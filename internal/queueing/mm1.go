// Package queueing implements the analytic results of Raman &
// McCanne's soft-state model (SIGCOMM '99, section 3): basic M/M/1
// formulas, a general open Jackson-network traffic-equation solver,
// and the closed forms for the open-loop announce/listen protocol —
// consistency E[c(t)], redundant-bandwidth fraction, the stability
// condition p_d > λ/μ_ch, and expected receive latency.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// MM1 describes an M/M/1 queue with Poisson arrivals at rate Lambda
// and exponential service at rate Mu (both in jobs per second, or in
// bits per second when jobs are constant-size packets — the ratios are
// unit-independent).
type MM1 struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate
}

// Utilization returns ρ = λ/μ.
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// Stable reports whether ρ < 1.
func (q MM1) Stable() bool { return q.Lambda < q.Mu }

// MeanJobs returns E[N] = ρ/(1-ρ), the mean number in system.
// Returns +Inf when unstable.
func (q MM1) MeanJobs() float64 {
	rho := q.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// MeanSojourn returns E[W] = 1/(μ-λ), the mean time in system. This is
// the quantity the paper uses to explain Figure 6's ~300 ms latency at
// negligible cold bandwidth. Returns +Inf when unstable.
func (q MM1) MeanSojourn() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 / (q.Mu - q.Lambda)
}

// MeanWait returns E[Wq] = ρ/(μ-λ), the mean queueing delay excluding
// service. Returns +Inf when unstable.
func (q MM1) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Utilization() / (q.Mu - q.Lambda)
}

// POccupancy returns P(N = n) = (1-ρ)ρⁿ for a stable queue.
func (q MM1) POccupancy(n int) float64 {
	rho := q.Utilization()
	if rho >= 1 || n < 0 {
		return 0
	}
	return (1 - rho) * math.Pow(rho, float64(n))
}

// ErrSingular is returned by SolveTraffic when the routing matrix
// admits no unique solution (e.g. a closed cycle with no exit).
var ErrSingular = errors.New("queueing: traffic equations are singular")

// SolveTraffic solves the Jackson traffic equations λ = γ + Pᵀλ for an
// open network: gamma[i] is the external arrival rate into node i and
// routing[i][j] is the probability a job leaving node i proceeds to
// node j (rows may sum to less than 1; the remainder exits the
// network). The returned slice is the total arrival rate at each node.
func SolveTraffic(gamma []float64, routing [][]float64) ([]float64, error) {
	n := len(gamma)
	if len(routing) != n {
		return nil, fmt.Errorf("queueing: routing is %dx?, want %dx%d", len(routing), n, n)
	}
	// Build A = I - Pᵀ and solve A·λ = γ by Gaussian elimination with
	// partial pivoting.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		if len(routing[i]) != n {
			return nil, fmt.Errorf("queueing: routing row %d has %d entries, want %d", i, len(routing[i]), n)
		}
		rowSum := 0.0
		for j, p := range routing[i] {
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("queueing: routing[%d][%d]=%v out of [0,1]", i, j, p)
			}
			rowSum += p
		}
		if rowSum > 1+1e-9 {
			return nil, fmt.Errorf("queueing: routing row %d sums to %v > 1", i, rowSum)
		}
	}
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := 0.0
			if i == j {
				v = 1
			}
			a[i][j] = v - routing[j][i] // transpose
		}
		b[i] = gamma[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	lambda := make([]float64, n)
	for i := 0; i < n; i++ {
		lambda[i] = b[i] / a[i][i]
	}
	return lambda, nil
}
