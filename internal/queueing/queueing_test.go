package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMM1Basics(t *testing.T) {
	q := MM1{Lambda: 2, Mu: 4}
	if !q.Stable() {
		t.Fatal("λ=2 μ=4 should be stable")
	}
	if !almost(q.Utilization(), 0.5, 1e-12) {
		t.Errorf("ρ = %v", q.Utilization())
	}
	if !almost(q.MeanJobs(), 1, 1e-12) {
		t.Errorf("E[N] = %v", q.MeanJobs())
	}
	if !almost(q.MeanSojourn(), 0.5, 1e-12) {
		t.Errorf("E[W] = %v", q.MeanSojourn())
	}
	if !almost(q.MeanWait(), 0.25, 1e-12) {
		t.Errorf("E[Wq] = %v", q.MeanWait())
	}
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 5, Mu: 4}
	if q.Stable() {
		t.Fatal("λ=5 μ=4 should be unstable")
	}
	if !math.IsInf(q.MeanJobs(), 1) || !math.IsInf(q.MeanSojourn(), 1) || !math.IsInf(q.MeanWait(), 1) {
		t.Error("unstable moments should be +Inf")
	}
	if q.POccupancy(3) != 0 {
		t.Error("unstable occupancy should be 0")
	}
}

func TestMM1OccupancySumsToOne(t *testing.T) {
	q := MM1{Lambda: 3, Mu: 5}
	sum := 0.0
	for n := 0; n < 500; n++ {
		sum += q.POccupancy(n)
	}
	if !almost(sum, 1, 1e-9) {
		t.Errorf("Σ P(N=n) = %v", sum)
	}
}

// Little's law: E[N] = λ·E[W].
func TestMM1LittlesLaw(t *testing.T) {
	f := func(l8, m8 uint8) bool {
		lambda := 0.1 + float64(l8%100)/10
		mu := lambda + 0.1 + float64(m8%100)/10
		q := MM1{Lambda: lambda, Mu: mu}
		return almost(q.MeanJobs(), lambda*q.MeanSojourn(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveTrafficTandem(t *testing.T) {
	// Two queues in tandem: all of node 0's output goes to node 1.
	lambda, err := SolveTraffic([]float64{3, 0}, [][]float64{{0, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lambda[0], 3, 1e-9) || !almost(lambda[1], 3, 1e-9) {
		t.Errorf("tandem rates = %v", lambda)
	}
}

func TestSolveTrafficFeedback(t *testing.T) {
	// Single queue with feedback probability 0.25: λ = 1/(1-0.25).
	lambda, err := SolveTraffic([]float64{1}, [][]float64{{0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lambda[0], 4.0/3.0, 1e-9) {
		t.Errorf("feedback rate = %v", lambda[0])
	}
}

func TestSolveTrafficOpenLoopNetwork(t *testing.T) {
	// The paper's two-class system expressed as a two-node network:
	// node 0 = inconsistent service, node 1 = consistent service.
	pc, pd := 0.3, 0.2
	routing := [][]float64{
		{pc * (1 - pd), (1 - pc) * (1 - pd)},
		{0, 1 - pd},
	}
	lambda, err := SolveTraffic([]float64{1, 0}, routing)
	if err != nil {
		t.Fatal(err)
	}
	m := OpenLoop{Lambda: 1, MuCh: 100, Pc: pc, Pd: pd}
	if !almost(lambda[0], m.LambdaI(), 1e-9) {
		t.Errorf("λ_I solver=%v closed=%v", lambda[0], m.LambdaI())
	}
	if !almost(lambda[1], m.LambdaC(), 1e-9) {
		t.Errorf("λ_C solver=%v closed=%v", lambda[1], m.LambdaC())
	}
}

func TestSolveTrafficErrors(t *testing.T) {
	if _, err := SolveTraffic([]float64{1}, [][]float64{{1.0}}); err == nil {
		t.Error("closed cycle should be singular")
	}
	if _, err := SolveTraffic([]float64{1, 1}, [][]float64{{0, 0}}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := SolveTraffic([]float64{1}, [][]float64{{-0.1}}); err == nil {
		t.Error("negative routing probability should error")
	}
	if _, err := SolveTraffic([]float64{1, 0}, [][]float64{{0.7, 0.7}, {0, 0}}); err == nil {
		t.Error("row sum > 1 should error")
	}
	if _, err := SolveTraffic([]float64{1, 0}, [][]float64{{0, 1}, {0}}); err == nil {
		t.Error("ragged routing should error")
	}
}

func TestOpenLoopValidate(t *testing.T) {
	good := OpenLoop{Lambda: 10, MuCh: 100, Pc: 0.1, Pd: 0.2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []OpenLoop{
		{Lambda: -1, MuCh: 1, Pc: 0, Pd: 0.5},
		{Lambda: 1, MuCh: 0, Pc: 0, Pd: 0.5},
		{Lambda: 1, MuCh: 1, Pc: -0.1, Pd: 0.5},
		{Lambda: 1, MuCh: 1, Pc: 1.1, Pd: 0.5},
		{Lambda: 1, MuCh: 1, Pc: 0.5, Pd: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestOpenLoopFlowConservation(t *testing.T) {
	// λ̂_I + λ̂_C must equal λ/p_d for all parameters (the paper's
	// aggregate-throughput identity).
	f := func(pc8, pd8, l8 uint8) bool {
		pc := float64(pc8%100) / 100
		pd := 0.01 + float64(pd8%99)/100
		lambda := 0.1 + float64(l8)
		m := OpenLoop{Lambda: lambda, MuCh: 1000, Pc: pc, Pd: pd}
		return almost(m.LambdaI()+m.LambdaC(), m.Throughput(), 1e-6*m.Throughput())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOpenLoopStability(t *testing.T) {
	m := OpenLoop{Lambda: 20, MuCh: 128, Pc: 0.1, Pd: 0.2}
	if !m.Stable() { // ρ = 20/25.6 < 1
		t.Error("should be stable")
	}
	m.Pd = 0.1 // ρ = 20/12.8 > 1
	if m.Stable() {
		t.Error("should be unstable")
	}
	if !math.IsNaN(m.Consistency()) {
		t.Error("unstable consistency should be NaN")
	}
}

func TestOpenLoopConsistencyMonotonicity(t *testing.T) {
	// Consistency must fall as loss rises and as death rate rises
	// (Figure 3's qualitative content).
	base := OpenLoop{Lambda: 20, MuCh: 128, Pc: 0.05, Pd: 0.3}
	moreLoss := base
	moreLoss.Pc = 0.4
	if base.BusyConsistency() <= moreLoss.BusyConsistency() {
		t.Error("busy consistency should fall with loss")
	}
	if base.Consistency() <= moreLoss.Consistency() {
		t.Error("consistency should fall with loss")
	}
	moreDeath := base
	moreDeath.Pd = 0.6
	if base.BusyConsistency() <= moreDeath.BusyConsistency() {
		t.Error("busy consistency should fall with death rate")
	}
}

func TestOpenLoopZeroLoss(t *testing.T) {
	m := OpenLoop{Lambda: 10, MuCh: 100, Pc: 0, Pd: 0.2}
	// With no loss, every record is consistent after its first
	// transmission; the fraction of services that are redundant is the
	// expected fraction of a record's lifetime spent consistent:
	// (1/p_d - 1)/(1/p_d) = 1-p_d.
	if !almost(m.BusyConsistency(), 1-m.Pd, 1e-12) {
		t.Errorf("q at p_c=0: %v, want %v", m.BusyConsistency(), 1-m.Pd)
	}
	if !almost(m.DeliveryProbability(), 1, 1e-12) {
		t.Errorf("delivery probability = %v", m.DeliveryProbability())
	}
	if !almost(m.ExpectedFirstDeliveryTries(), 1, 1e-12) {
		t.Errorf("first-delivery tries = %v", m.ExpectedFirstDeliveryTries())
	}
}

func TestOpenLoopFigure4Anchor(t *testing.T) {
	// Paper: "at ... an announcement death rate of 10%, about 90% of
	// the total available bandwidth is wasted" at low loss.
	m := OpenLoop{Lambda: 10, MuCh: 1000, Pc: 0.0, Pd: 0.10}
	if !almost(m.RedundantFraction(), 0.9, 1e-9) {
		t.Errorf("redundant fraction = %v, want 0.9", m.RedundantFraction())
	}
	m.Pc = 0.2
	if m.RedundantFraction() >= 0.9 || m.RedundantFraction() < 0.8 {
		t.Errorf("redundant fraction at 20%% loss = %v, want slightly below 0.9", m.RedundantFraction())
	}
}

func TestOpenLoopPJointNormalizes(t *testing.T) {
	m := OpenLoop{Lambda: 15, MuCh: 60, Pc: 0.2, Pd: 0.4}
	sum := 0.0
	for ni := 0; ni < 60; ni++ {
		for nc := 0; nc < 60; nc++ {
			sum += m.PJoint(ni, nc)
		}
	}
	if !almost(sum, 1, 1e-6) {
		t.Errorf("ΣΣ PJoint = %v", sum)
	}
	if m.PJoint(-1, 0) != 0 || m.PJoint(0, -1) != 0 {
		t.Error("negative occupancy should have probability 0")
	}
}

func TestOpenLoopPJointMatchesConsistency(t *testing.T) {
	// Σ_{n>0} (nc/n)·P(ni,nc) must equal the closed form ρ·q.
	m := OpenLoop{Lambda: 15, MuCh: 60, Pc: 0.2, Pd: 0.4}
	sum := 0.0
	for ni := 0; ni < 80; ni++ {
		for nc := 0; nc < 80; nc++ {
			if ni+nc == 0 {
				continue
			}
			sum += float64(nc) / float64(ni+nc) * m.PJoint(ni, nc)
		}
	}
	if !almost(sum, m.Consistency(), 1e-6) {
		t.Errorf("Σ (nc/n)P = %v, closed form = %v", sum, m.Consistency())
	}
}

func TestTable1RowsSumToOne(t *testing.T) {
	f := func(pc8, pd8 uint8) bool {
		m := OpenLoop{
			Lambda: 1, MuCh: 10,
			Pc: float64(pc8%101) / 100,
			Pd: 0.01 + float64(pd8%99)/100,
		}
		tb := m.Table1()
		sumI := tb.IEnter[0] + tb.IEnter[1] + tb.IEnter[2]
		sumC := tb.CEnter[0] + tb.CEnter[1] + tb.CEnter[2]
		return almost(sumI, 1, 1e-12) && almost(sumC, 1, 1e-12) && tb.CEnter[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeliveryProbabilityBounds(t *testing.T) {
	f := func(pc8, pd8 uint8) bool {
		m := OpenLoop{
			Lambda: 1, MuCh: 10,
			Pc: float64(pc8%101) / 100,
			Pd: 0.01 + float64(pd8%99)/100,
		}
		p := m.DeliveryProbability()
		return p >= 0 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
