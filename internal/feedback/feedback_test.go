package feedback

import (
	"math"
	"testing"

	"softstate/internal/xrand"
)

func TestSuppressorScheduleWindow(t *testing.T) {
	s := NewSuppressor(1.0, 8.0, xrand.New(1))
	for i := 0; i < 100; i++ {
		key := string(rune('a' + i%26))
		at, ok := s.Schedule(key+"x", 10)
		if ok && (at < 10 || at >= 11) {
			t.Fatalf("fire time %v outside [10, 11)", at)
		}
	}
}

func TestSuppressorDuplicateSchedule(t *testing.T) {
	s := NewSuppressor(1, 8, xrand.New(2))
	at1, ok1 := s.Schedule("k", 0)
	at2, ok2 := s.Schedule("k", 0.5)
	if !ok1 || ok2 {
		t.Fatalf("ok1=%v ok2=%v", ok1, ok2)
	}
	if at1 != at2 {
		t.Errorf("duplicate schedule moved the timer: %v vs %v", at1, at2)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestSuppressorDamping(t *testing.T) {
	s := NewSuppressor(1, 8, xrand.New(3))
	at, _ := s.Schedule("k", 0)
	if !s.Heard("k") {
		t.Fatal("Heard on pending key = false")
	}
	if s.Fire("k", at) {
		t.Error("suppressed NACK still fired")
	}
	if s.Heard("k") {
		t.Error("Heard on absent key = true")
	}
	_, sup, _ := s.Stats()
	if sup != 1 {
		t.Errorf("suppressed = %d", sup)
	}
}

func TestSuppressorFire(t *testing.T) {
	s := NewSuppressor(1, 8, xrand.New(4))
	at, _ := s.Schedule("k", 0)
	if !s.Fire("k", at) {
		t.Fatal("due NACK did not fire")
	}
	// Still pending until repaired, so a backoff can be applied.
	if s.Pending() != 1 {
		t.Errorf("Pending after fire = %d", s.Pending())
	}
	s.Repaired("k")
	if s.Pending() != 0 {
		t.Errorf("Pending after repair = %d", s.Pending())
	}
	if s.Fire("k", at+10) {
		t.Error("fired after repair")
	}
}

func TestSuppressorSpuriousEarlyFire(t *testing.T) {
	s := NewSuppressor(1, 8, xrand.New(5))
	s.Schedule("k", 0)
	later := s.Reschedule("k", 5) // moved into [5, 5+2w)
	if s.Fire("k", 1) {
		t.Error("stale timer fired after reschedule")
	}
	if !s.Fire("k", later) {
		t.Error("rescheduled timer did not fire when due")
	}
}

func TestSuppressorBackoffGrows(t *testing.T) {
	rnd := xrand.New(6)
	s := NewSuppressor(1, 64, rnd)
	s.Schedule("k", 0)
	// With repeated reschedules the expected delay grows; sample the
	// mean of many draws at attempt 5 vs attempt 1.
	sum1, sum5 := 0.0, 0.0
	const n = 200
	for i := 0; i < n; i++ {
		s2 := NewSuppressor(1, 64, xrand.New(int64(i+100)))
		s2.Schedule("x", 0)
		sum1 += s2.Reschedule("x", 0)
		for j := 0; j < 3; j++ {
			s2.Reschedule("x", 0)
		}
		sum5 += s2.Reschedule("x", 0)
	}
	if sum5/n < 2*(sum1/n) {
		t.Errorf("backoff did not grow: attempt1 mean %v, attempt5 mean %v", sum1/n, sum5/n)
	}
}

func TestSuppressorBackoffCapped(t *testing.T) {
	s := NewSuppressor(1, 4, xrand.New(7))
	s.Schedule("k", 0)
	for i := 0; i < 20; i++ {
		at := s.Reschedule("k", 100)
		if at >= 104 {
			t.Fatalf("fire time %v beyond now+maxWindow", at)
		}
	}
}

func TestSuppressorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSuppressor(0, 1, xrand.New(1)) },
		func() { NewSuppressor(2, 1, xrand.New(1)) },
		func() { NewSuppressor(1, 2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid suppressor accepted")
				}
			}()
			fn()
		}()
	}
}

func TestLossEstimatorNoLoss(t *testing.T) {
	l := NewLossEstimator(0.25)
	for seq := uint32(0); seq < 100; seq++ {
		l.Observe(seq)
	}
	if l.CumulativeLoss() != 0 {
		t.Errorf("lossless cumulative = %v", l.CumulativeLoss())
	}
	recv, exp := l.Counts()
	if recv != 100 || exp != 100 {
		t.Errorf("counts = (%d, %d)", recv, exp)
	}
}

func TestLossEstimatorGaps(t *testing.T) {
	l := NewLossEstimator(0.25)
	// Receive every other packet: 0, 2, 4, … → 50% loss.
	for seq := uint32(0); seq < 200; seq += 2 {
		l.Observe(seq)
	}
	got := l.CumulativeLoss()
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("cumulative loss = %v, want ~0.5", got)
	}
}

func TestLossEstimatorReordering(t *testing.T) {
	l := NewLossEstimator(0.25)
	for _, seq := range []uint32{0, 1, 3, 2, 4} { // reordered, nothing lost
		l.Observe(seq)
	}
	if l.CumulativeLoss() != 0 {
		t.Errorf("reordering counted as loss: %v", l.CumulativeLoss())
	}
}

func TestLossEstimatorWraparound(t *testing.T) {
	l := NewLossEstimator(0.25)
	l.Observe(math.MaxUint32 - 1)
	l.Observe(math.MaxUint32)
	l.Observe(0) // wrap
	l.Observe(1)
	if l.CumulativeLoss() != 0 {
		t.Errorf("wraparound counted as loss: %v", l.CumulativeLoss())
	}
}

func TestLossEstimatorIntervals(t *testing.T) {
	l := NewLossEstimator(0.5)
	for seq := uint32(0); seq < 100; seq++ {
		l.Observe(seq)
	}
	if got := l.IntervalLoss(); got != 0 {
		t.Errorf("first interval loss = %v", got)
	}
	// Next interval: lose 100..149, receive 150..199.
	for seq := uint32(150); seq < 200; seq++ {
		l.Observe(seq)
	}
	got := l.IntervalLoss()
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("second interval loss = %v, want ~0.5", got)
	}
	if l.Smoothed() <= 0 || l.Smoothed() > 0.5 {
		t.Errorf("smoothed = %v", l.Smoothed())
	}
	// An empty interval returns the EWMA unchanged.
	if got := l.IntervalLoss(); got != l.Smoothed() {
		t.Errorf("empty interval = %v, want EWMA %v", got, l.Smoothed())
	}
}

func TestLossEstimatorAlphaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha=0 accepted")
		}
	}()
	NewLossEstimator(0)
}

func TestLossEstimatorDuplicates(t *testing.T) {
	l := NewLossEstimator(0.25)
	l.Observe(0)
	l.Observe(1)
	l.Observe(1) // duplicate
	l.Observe(2)
	// Duplicates inflate received beyond expected; loss clamps at 0.
	if l.CumulativeLoss() != 0 {
		t.Errorf("duplicates produced loss %v", l.CumulativeLoss())
	}
}
