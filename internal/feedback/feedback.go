// Package feedback implements the receiver-side feedback machinery
// for soft-state transports: slotting-and-damping NACK suppression for
// multicast sessions (the mechanism the paper cites from SRM/XTP for
// managing feedback traffic scalably), exponential NACK backoff, and
// RTCP-style loss estimation from header sequence numbers.
//
// The package is time-agnostic: all methods take explicit timestamps,
// so it works under both the discrete-event simulator and wall-clock
// SSTP sessions.
package feedback

import (
	"fmt"
	"math"

	"softstate/internal/xrand"
)

// Suppressor implements slotting and damping: when a receiver detects
// a loss it draws a random slot in [0, Window) and only sends its NACK
// when the slot elapses without hearing an equivalent NACK from
// another session member. Repeated NACKs for the same key back off
// exponentially (doubling windows up to MaxWindow) to avoid NACK
// implosion on persistent loss.
type Suppressor struct {
	rnd       *xrand.Rand
	window    float64
	maxWindow float64

	pending map[string]*slot
	// counters
	scheduled  int
	suppressed int
	fired      int
}

type slot struct {
	fireAt   float64
	attempts int
}

// NewSuppressor returns a suppressor with the given initial slot
// window and backoff cap (both in seconds).
func NewSuppressor(window, maxWindow float64, rnd *xrand.Rand) *Suppressor {
	if window <= 0 || maxWindow < window {
		panic(fmt.Sprintf("feedback: bad windows (%v, %v)", window, maxWindow))
	}
	if rnd == nil {
		panic("feedback: nil rand")
	}
	return &Suppressor{rnd: rnd, window: window, maxWindow: maxWindow, pending: make(map[string]*slot)}
}

// Schedule registers a loss of key detected at time now, returning the
// absolute time at which the caller should invoke Fire. If a NACK for
// the key is already pending, the existing fire time is returned with
// ok=false (no new timer needed).
func (s *Suppressor) Schedule(key string, now float64) (fireAt float64, ok bool) {
	if sl, exists := s.pending[key]; exists {
		return sl.fireAt, false
	}
	w := s.window * math.Pow(2, 0) // first attempt uses the base window
	sl := &slot{fireAt: now + s.rnd.Uniform(0, w)}
	s.pending[key] = sl
	s.scheduled++
	return sl.fireAt, true
}

// Reschedule is called after a fired NACK failed to produce a repair;
// it backs the key's window off exponentially and returns the next
// fire time.
func (s *Suppressor) Reschedule(key string, now float64) float64 {
	sl, exists := s.pending[key]
	if !exists {
		sl = &slot{}
		s.pending[key] = sl
		s.scheduled++
	}
	sl.attempts++
	w := s.window * math.Pow(2, float64(sl.attempts))
	if w > s.maxWindow {
		w = s.maxWindow
	}
	sl.fireAt = now + s.rnd.Uniform(0, w)
	return sl.fireAt
}

// Heard notes that an equivalent NACK from another member was
// observed; the pending NACK for key is suppressed (damping). It
// reports whether a pending NACK existed.
func (s *Suppressor) Heard(key string) bool {
	if _, exists := s.pending[key]; !exists {
		return false
	}
	delete(s.pending, key)
	s.suppressed++
	return true
}

// Fire is called when the timer for key expires. It reports whether
// the NACK should actually be sent (true unless it was suppressed or
// rescheduled to a later instant in the meantime). A fired key stays
// pending until Repaired or Heard, so Reschedule can back it off.
func (s *Suppressor) Fire(key string, now float64) bool {
	sl, exists := s.pending[key]
	if !exists {
		return false
	}
	if sl.fireAt > now+1e-9 {
		return false // rescheduled to later; spurious timer
	}
	s.fired++
	return true
}

// Repaired is called when the missing data arrives; the pending state
// for key is discarded.
func (s *Suppressor) Repaired(key string) {
	delete(s.pending, key)
}

// Pending returns the number of keys with outstanding NACK timers.
func (s *Suppressor) Pending() int { return len(s.pending) }

// Stats returns (scheduled, suppressed, fired) counters.
func (s *Suppressor) Stats() (scheduled, suppressed, fired int) {
	return s.scheduled, s.suppressed, s.fired
}

// LossEstimator derives a loss-rate estimate from the per-sender
// sequence numbers in SSTP headers, in the style of RTCP receiver
// reports: it tracks the highest sequence seen, counts gaps as losses,
// and exposes both cumulative and EWMA-smoothed interval estimates.
type LossEstimator struct {
	initialized bool
	highest     uint32
	received    uint64
	expected    uint64

	// interval snapshot for Report generation
	lastReceived uint64
	lastExpected uint64

	ewma  float64
	alpha float64
}

// NewLossEstimator returns an estimator with the given EWMA smoothing
// factor (0 < alpha <= 1; typical 0.25).
func NewLossEstimator(alpha float64) *LossEstimator {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("feedback: alpha %v out of (0,1]", alpha))
	}
	return &LossEstimator{alpha: alpha}
}

// Observe records the arrival of a packet with sequence number seq.
// Out-of-order arrivals within 1<<15 of the highest sequence are
// tolerated (they reduce the loss count); sequence wraparound is
// handled modulo 2^32.
func (l *LossEstimator) Observe(seq uint32) {
	l.received++
	if !l.initialized {
		l.initialized = true
		l.highest = seq
		l.expected = 1
		return
	}
	diff := int32(seq - l.highest)
	switch {
	case diff > 0:
		l.expected += uint64(diff)
		l.highest = seq
	default:
		// Late or duplicate packet: already counted in expected.
	}
}

// CumulativeLoss returns the all-time loss fraction.
func (l *LossEstimator) CumulativeLoss() float64 {
	if l.expected == 0 {
		return 0
	}
	lost := float64(l.expected) - float64(l.received)
	if lost < 0 {
		lost = 0
	}
	return lost / float64(l.expected)
}

// IntervalLoss closes the current report interval: it returns the loss
// fraction since the previous call and folds it into the EWMA.
func (l *LossEstimator) IntervalLoss() float64 {
	dExp := l.expected - l.lastExpected
	dRecv := l.received - l.lastReceived
	l.lastExpected = l.expected
	l.lastReceived = l.received
	if dExp == 0 {
		return l.ewma
	}
	lost := float64(dExp) - float64(dRecv)
	if lost < 0 {
		lost = 0
	}
	frac := lost / float64(dExp)
	l.ewma = l.alpha*frac + (1-l.alpha)*l.ewma
	return frac
}

// Smoothed returns the EWMA loss estimate.
func (l *LossEstimator) Smoothed() float64 { return l.ewma }

// Counts returns (received, expected) packet totals.
func (l *LossEstimator) Counts() (received, expected uint64) {
	return l.received, l.expected
}
