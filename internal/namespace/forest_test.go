package namespace_test

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"softstate/internal/namespace"
	"softstate/internal/table"
)

// buildPair inserts the same keys into one unsharded Tree and into a
// Forest striped exactly the way production does (table.StripeIndex on
// the first path component).
func buildPair(t *testing.T, kind namespace.HashKind, stripes int, keys map[string][]byte) (*namespace.Tree, *namespace.Forest) {
	t.Helper()
	tree := namespace.New(kind)
	forest := namespace.NewForest(stripes, kind)
	ver := uint64(0)
	for k, v := range keys {
		ver++
		if err := tree.Put(k, v, ver); err != nil {
			t.Fatal(err)
		}
		idx := table.StripeIndex(table.Key(k), forest.Size())
		if err := forest.Tree(idx).Put(k, v, ver); err != nil {
			t.Fatal(err)
		}
	}
	return tree, forest
}

// TestForestRootMatchesTree is the tentpole invariant: the striped
// root digest is byte-identical to the pre-sharding single tree's for
// identical contents, across stripe counts and hash kinds.
func TestForestRootMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make(map[string][]byte)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("g%02d/m%d/k%d", rng.Intn(24), rng.Intn(4), i)
		keys[k] = []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
	}
	keys["solo"] = []byte("top-level leaf")
	for _, kind := range []namespace.HashKind{namespace.HashSHA256, namespace.HashMD5} {
		for _, stripes := range []int{1, 2, 4, 8, 64} {
			tree, forest := buildPair(t, kind, stripes, keys)
			want, got := tree.RootDigest(), forest.RootDigest()
			if want != got {
				t.Errorf("kind=%d stripes=%d: forest root %x != tree root %x", kind, stripes, want, got)
			}
			if tree.Len() != forest.LeafCount() {
				t.Errorf("kind=%d stripes=%d: leaf count %d != %d", kind, stripes, forest.LeafCount(), tree.Len())
			}
		}
	}
}

// TestForestRootTracksMutations: identity holds through updates and
// deletes, not just bulk loads.
func TestForestRootTracksMutations(t *testing.T) {
	keys := map[string][]byte{
		"a/1": []byte("x"), "a/2": []byte("y"), "b/1": []byte("z"), "c/1": []byte("w"),
	}
	tree, forest := buildPair(t, namespace.HashSHA256, 4, keys)
	at := func(k string) *namespace.Tree {
		return forest.Tree(table.StripeIndex(table.Key(k), forest.Size()))
	}

	tree.Put("a/1", []byte("x2"), 9)
	at("a/1").Put("a/1", []byte("x2"), 9)
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after update")
	}

	tree.Delete("b/1")
	at("b/1").Delete("b/1")
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after delete")
	}

	tree.Put("d/new", []byte("n"), 10)
	at("d/new").Put("d/new", []byte("n"), 10)
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after insert of new top-level subtree")
	}

	tree.Delete("c/1") // prunes the whole "c" subtree
	at("c/1").Delete("c/1")
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after subtree prune")
	}
}

// TestForestEmptyMatchesEmptyTree: the degenerate combine (no
// children) must equal an empty tree's root.
func TestForestEmptyMatchesEmptyTree(t *testing.T) {
	tree := namespace.New(namespace.HashSHA256)
	forest := namespace.NewForest(8, namespace.HashSHA256)
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("empty forest root differs from empty tree root")
	}
}

// TestForestRootGolden pins the combined digest of a fixed content set
// to a constant, so accidental preimage changes (tags, ordering,
// version encoding) fail loudly even if Tree and Forest drift
// together.
func TestForestRootGolden(t *testing.T) {
	keys := []struct {
		k string
		v string
	}{
		{"alpha/1", "A"}, {"alpha/2", "B"}, {"beta/x/deep", "C"}, {"gamma", "D"},
	}
	forest := namespace.NewForest(4, namespace.HashSHA256)
	for i, kv := range keys {
		idx := table.StripeIndex(table.Key(kv.k), forest.Size())
		if err := forest.Tree(idx).Put(kv.k, []byte(kv.v), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	const golden = "ab78dcde45d1ae3991b65fc39ec30351"
	got := forest.RootDigest()
	if hex.EncodeToString(got[:]) != golden {
		t.Errorf("golden root = %s, want %s", hex.EncodeToString(got[:]), golden)
	}
}

// TestCombineChildrenMerges: merged child lists come back sorted.
func TestCombineChildrenMerges(t *testing.T) {
	g1 := []namespace.Child{{Name: "b"}, {Name: "d"}}
	g2 := []namespace.Child{{Name: "a"}, {Name: "c"}}
	out := namespace.CombineChildren(g1, g2)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if out[i].Name != want {
			t.Errorf("out[%d] = %q, want %q", i, out[i].Name, want)
		}
	}
}

func BenchmarkNamespaceForestRoot(b *testing.B) {
	forest := namespace.NewForest(8, namespace.HashSHA256)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("g%02d/k%d", i%64, i)
		forest.Tree(table.StripeIndex(table.Key(k), 8)).Put(k, []byte("value"), uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		forest.RootDigest()
	}
}
