package namespace_test

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"softstate/internal/namespace"
	"softstate/internal/table"
)

// buildPair inserts the same keys into one unsharded Tree and into a
// Forest striped exactly the way production does (table.StripeIndex on
// the first path component).
func buildPair(t *testing.T, kind namespace.HashKind, stripes int, keys map[string][]byte) (*namespace.Tree, *namespace.Forest) {
	t.Helper()
	tree := namespace.New(kind)
	forest := namespace.NewForest(stripes, kind)
	ver := uint64(0)
	for k, v := range keys {
		ver++
		if err := tree.Put(k, v, ver); err != nil {
			t.Fatal(err)
		}
		idx := table.StripeIndex(table.Key(k), forest.Size())
		if err := forest.Tree(idx).Put(k, v, ver); err != nil {
			t.Fatal(err)
		}
	}
	return tree, forest
}

// TestForestRootMatchesTree is the tentpole invariant: the striped
// root digest is byte-identical to the pre-sharding single tree's for
// identical contents, across stripe counts and hash kinds.
func TestForestRootMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make(map[string][]byte)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("g%02d/m%d/k%d", rng.Intn(24), rng.Intn(4), i)
		keys[k] = []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
	}
	keys["solo"] = []byte("top-level leaf")
	for _, kind := range []namespace.HashKind{namespace.HashSHA256, namespace.HashMD5} {
		for _, stripes := range []int{1, 2, 4, 8, 64} {
			tree, forest := buildPair(t, kind, stripes, keys)
			want, got := tree.RootDigest(), forest.RootDigest()
			if want != got {
				t.Errorf("kind=%d stripes=%d: forest root %x != tree root %x", kind, stripes, want, got)
			}
			if tree.Len() != forest.LeafCount() {
				t.Errorf("kind=%d stripes=%d: leaf count %d != %d", kind, stripes, forest.LeafCount(), tree.Len())
			}
		}
	}
}

// TestForestRootTracksMutations: identity holds through updates and
// deletes, not just bulk loads.
func TestForestRootTracksMutations(t *testing.T) {
	keys := map[string][]byte{
		"a/1": []byte("x"), "a/2": []byte("y"), "b/1": []byte("z"), "c/1": []byte("w"),
	}
	tree, forest := buildPair(t, namespace.HashSHA256, 4, keys)
	at := func(k string) *namespace.Tree {
		return forest.Tree(table.StripeIndex(table.Key(k), forest.Size()))
	}

	tree.Put("a/1", []byte("x2"), 9)
	at("a/1").Put("a/1", []byte("x2"), 9)
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after update")
	}

	tree.Delete("b/1")
	at("b/1").Delete("b/1")
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after delete")
	}

	tree.Put("d/new", []byte("n"), 10)
	at("d/new").Put("d/new", []byte("n"), 10)
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after insert of new top-level subtree")
	}

	tree.Delete("c/1") // prunes the whole "c" subtree
	at("c/1").Delete("c/1")
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("diverged after subtree prune")
	}
}

// TestForestEmptyMatchesEmptyTree: the degenerate combine (no
// children) must equal an empty tree's root.
func TestForestEmptyMatchesEmptyTree(t *testing.T) {
	tree := namespace.New(namespace.HashSHA256)
	forest := namespace.NewForest(8, namespace.HashSHA256)
	if tree.RootDigest() != forest.RootDigest() {
		t.Fatal("empty forest root differs from empty tree root")
	}
}

// TestForestRootGolden pins the combined digest of a fixed content set
// to a constant, so accidental preimage changes (tags, ordering,
// version encoding) fail loudly even if Tree and Forest drift
// together.
func TestForestRootGolden(t *testing.T) {
	keys := []struct {
		k string
		v string
	}{
		{"alpha/1", "A"}, {"alpha/2", "B"}, {"beta/x/deep", "C"}, {"gamma", "D"},
	}
	forest := namespace.NewForest(4, namespace.HashSHA256)
	for i, kv := range keys {
		idx := table.StripeIndex(table.Key(kv.k), forest.Size())
		if err := forest.Tree(idx).Put(kv.k, []byte(kv.v), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	const golden = "ab78dcde45d1ae3991b65fc39ec30351"
	got := forest.RootDigest()
	if hex.EncodeToString(got[:]) != golden {
		t.Errorf("golden root = %s, want %s", hex.EncodeToString(got[:]), golden)
	}
}

// TestCombineChildrenMerges: merged child lists come back sorted.
func TestCombineChildrenMerges(t *testing.T) {
	g1 := []namespace.Child{{Name: "b"}, {Name: "d"}}
	g2 := []namespace.Child{{Name: "a"}, {Name: "c"}}
	out := namespace.CombineChildren(g1, g2)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if out[i].Name != want {
			t.Errorf("out[%d] = %q, want %q", i, out[i].Name, want)
		}
	}
}

// TestCombineChildrenEdgeCases: the degenerate merges — no groups at
// all, a single group, and groups that are all empty — behave like
// the unsharded tree's child list for the same contents.
func TestCombineChildrenEdgeCases(t *testing.T) {
	if out := namespace.CombineChildren(); len(out) != 0 {
		t.Fatalf("combine of zero groups has %d children", len(out))
	}
	if out := namespace.CombineChildren(nil, nil, []namespace.Child{}); len(out) != 0 {
		t.Fatalf("combine of all-empty groups has %d children", len(out))
	}
	// A single unsorted group still comes back sorted, and the input
	// slice is left untouched (Combine must copy, not sort in place —
	// the group aliases a stripe's live child list).
	g := []namespace.Child{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	out := namespace.CombineChildren(g)
	for i, want := range []string{"a", "m", "z"} {
		if out[i].Name != want {
			t.Errorf("out[%d] = %q, want %q", i, out[i].Name, want)
		}
	}
	if g[0].Name != "z" || g[1].Name != "a" || g[2].Name != "m" {
		t.Errorf("input group mutated: %v", g)
	}
}

// TestCombineRootEdgeCases pins the combine fold against the
// unsharded tree on the degenerate stripe shapes: no children (zero
// or all-empty stripes) must equal an empty tree's root, and one
// stripe holding everything must equal that tree's own root — for
// both hash kinds.
func TestCombineRootEdgeCases(t *testing.T) {
	for _, kind := range []namespace.HashKind{namespace.HashSHA256, namespace.HashMD5} {
		empty := namespace.New(kind)
		if got := namespace.CombineRoot(kind, nil); got != empty.RootDigest() {
			t.Errorf("kind=%d: combine of no children != empty tree root", kind)
		}
		if got := namespace.CombineRoot(kind, namespace.CombineChildren(nil, nil)); got != empty.RootDigest() {
			t.Errorf("kind=%d: combine of all-empty stripes != empty tree root", kind)
		}

		// One stripe owning every key: combining its children alone
		// replays the unsharded root.
		tree := namespace.New(kind)
		solo := namespace.New(kind)
		for i, k := range []string{"a/1", "a/2", "b/deep/leaf", "top"} {
			if err := tree.Put(k, []byte{byte(i)}, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
			if err := solo.Put(k, []byte{byte(i)}, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		children, err := solo.Children("")
		if err != nil {
			t.Fatal(err)
		}
		got := namespace.CombineRoot(kind, namespace.CombineChildren(children))
		if got != tree.RootDigest() {
			t.Errorf("kind=%d: single-stripe combine != unsharded root", kind)
		}
	}
}

// TestForestAllEmptyStripes: a many-stripe forest with nothing in it
// reports the empty tree's root for every hash kind and stripe count.
func TestForestAllEmptyStripes(t *testing.T) {
	for _, kind := range []namespace.HashKind{namespace.HashSHA256, namespace.HashMD5} {
		for _, stripes := range []int{1, 2, 8, 64} {
			tree := namespace.New(kind)
			forest := namespace.NewForest(stripes, kind)
			if tree.RootDigest() != forest.RootDigest() {
				t.Errorf("kind=%d stripes=%d: empty forest root differs from empty tree root", kind, stripes)
			}
		}
	}
}

func BenchmarkNamespaceForestRoot(b *testing.B) {
	forest := namespace.NewForest(8, namespace.HashSHA256)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("g%02d/k%d", i%64, i)
		forest.Tree(table.StripeIndex(table.Key(k), 8)).Put(k, []byte("value"), uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		forest.RootDigest()
	}
}
