package namespace

import (
	"fmt"
	"testing"
	"testing/quick"
)

func mustPut(t *testing.T, tr *Tree, path string, val string, ver uint64) {
	t.Helper()
	if err := tr.Put(path, []byte(val), ver); err != nil {
		t.Fatalf("Put(%q): %v", path, err)
	}
}

func TestPutGet(t *testing.T) {
	tr := New(HashSHA256)
	mustPut(t, tr, "a/b/c", "v1", 1)
	val, ver, ok := tr.Get("a/b/c")
	if !ok || string(val) != "v1" || ver != 1 {
		t.Fatalf("Get = (%q, %d, %v)", val, ver, ok)
	}
	if _, _, ok := tr.Get("a/b"); ok {
		t.Error("interior node returned as leaf")
	}
	if _, _, ok := tr.Get("missing"); ok {
		t.Error("missing path returned ok")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPathValidation(t *testing.T) {
	tr := New(HashSHA256)
	if err := tr.Put("", nil, 1); err == nil {
		t.Error("Put at root accepted")
	}
	if err := tr.Put("a//b", nil, 1); err == nil {
		t.Error("empty component accepted")
	}
	mustPut(t, tr, "a/b", "x", 1)
	if err := tr.Put("a/b/c", nil, 2); err == nil {
		t.Error("descending through a leaf accepted")
	}
	if err := tr.Put("a", nil, 2); err == nil {
		t.Error("leaf over interior node accepted")
	}
}

func TestDigestChangesOnUpdate(t *testing.T) {
	tr := New(HashSHA256)
	mustPut(t, tr, "a/b", "v1", 1)
	d1 := tr.RootDigest()
	mustPut(t, tr, "a/b", "v2", 2)
	d2 := tr.RootDigest()
	if d1 == d2 {
		t.Error("digest unchanged after value update")
	}
	// Same value, new version also changes the digest (version is
	// part of the leaf identity).
	mustPut(t, tr, "a/b", "v2", 3)
	if tr.RootDigest() == d2 {
		t.Error("digest unchanged after version bump")
	}
}

func TestDigestDeterministicAcrossInsertOrder(t *testing.T) {
	t1 := New(HashSHA256)
	t2 := New(HashSHA256)
	paths := []string{"x/1", "x/2", "y/1", "z"}
	for i, p := range paths {
		mustPut(t, t1, p, p, uint64(i))
	}
	for i := len(paths) - 1; i >= 0; i-- {
		mustPut(t, t2, paths[i], paths[i], uint64(i))
	}
	if t1.RootDigest() != t2.RootDigest() {
		t.Error("digest depends on insertion order")
	}
}

func TestIdenticalTreesMatchDifferentTreesDiffer(t *testing.T) {
	a, b := New(HashSHA256), New(HashSHA256)
	for _, tr := range []*Tree{a, b} {
		mustPut(t, tr, "s/audio", "pcm", 1)
		mustPut(t, tr, "s/video", "h261", 2)
	}
	if a.RootDigest() != b.RootDigest() {
		t.Fatal("identical trees have different digests")
	}
	mustPut(t, b, "s/video", "h263", 3)
	if a.RootDigest() == b.RootDigest() {
		t.Fatal("different trees share a digest")
	}
}

func TestDelete(t *testing.T) {
	tr := New(HashSHA256)
	mustPut(t, tr, "a/b/c", "v", 1)
	mustPut(t, tr, "a/b/d", "w", 2)
	d1 := tr.RootDigest()
	if !tr.Delete("a/b/c") {
		t.Fatal("Delete existing = false")
	}
	if tr.Delete("a/b/c") {
		t.Fatal("Delete missing = true")
	}
	if tr.Delete("a/b") {
		t.Fatal("Delete of interior node = true")
	}
	if tr.RootDigest() == d1 {
		t.Error("digest unchanged after delete")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Deleting the last leaf under a branch prunes the branch.
	tr.Delete("a/b/d")
	if tr.Has("a") {
		t.Error("empty interior branch not pruned")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after full delete", tr.Len())
	}
}

func TestChildren(t *testing.T) {
	tr := New(HashSHA256)
	mustPut(t, tr, "s/b", "1", 1)
	mustPut(t, tr, "s/a/x", "2", 2)
	kids, err := tr.Children("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0].Name != "a" || kids[1].Name != "b" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Leaf || !kids[1].Leaf {
		t.Errorf("leaf flags wrong: %+v", kids)
	}
	if _, err := tr.Children("nope"); err == nil {
		t.Error("Children of missing node succeeded")
	}
}

func TestLeaves(t *testing.T) {
	tr := New(HashSHA256)
	for i, p := range []string{"a/1", "a/2", "b", "c/d/e"} {
		mustPut(t, tr, p, "v", uint64(i))
	}
	all, err := tr.Leaves("")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a/1", "a/2", "b", "c/d/e"}
	if len(all) != len(want) {
		t.Fatalf("Leaves = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("Leaves = %v, want %v", all, want)
		}
	}
	sub, _ := tr.Leaves("a")
	if len(sub) != 2 || sub[0] != "a/1" {
		t.Errorf("Leaves(a) = %v", sub)
	}
}

func TestLeafCount(t *testing.T) {
	tr := New(HashSHA256)
	mustPut(t, tr, "a/1", "v", 1)
	mustPut(t, tr, "a/2", "v", 2)
	mustPut(t, tr, "b", "v", 3)
	n, err := tr.LeafCount("a")
	if err != nil || n != 2 {
		t.Errorf("LeafCount(a) = (%d, %v)", n, err)
	}
	n, _ = tr.LeafCount("")
	if n != 3 {
		t.Errorf("LeafCount(root) = %d", n)
	}
}

func TestDiffChildren(t *testing.T) {
	local, remote := New(HashSHA256), New(HashSHA256)
	for _, tr := range []*Tree{local, remote} {
		mustPut(t, tr, "s/a", "same", 1)
		mustPut(t, tr, "s/b", "same", 2)
	}
	mustPut(t, remote, "s/b", "changed", 3) // differs
	mustPut(t, remote, "s/c", "new", 4)     // missing locally

	remoteKids, _ := remote.Children("s")
	differ, missing, err := local.DiffChildren("s", remoteKids)
	if err != nil {
		t.Fatal(err)
	}
	if len(differ) != 1 || differ[0] != "b" {
		t.Errorf("differ = %v", differ)
	}
	if len(missing) != 1 || missing[0] != "c" {
		t.Errorf("missing = %v", missing)
	}
}

func TestDiffChildrenMissingNode(t *testing.T) {
	local, remote := New(HashSHA256), New(HashSHA256)
	mustPut(t, remote, "s/a", "v", 1)
	remoteKids, _ := remote.Children("s")
	differ, missing, err := local.DiffChildren("s", remoteKids)
	if err != nil {
		t.Fatal(err)
	}
	if len(differ) != 0 || len(missing) != 1 || missing[0] != "a" {
		t.Errorf("differ=%v missing=%v", differ, missing)
	}
}

func TestMD5Mode(t *testing.T) {
	a, b := New(HashMD5), New(HashMD5)
	mustPut(t, a, "x", "v", 1)
	mustPut(t, b, "x", "v", 1)
	if a.RootDigest() != b.RootDigest() {
		t.Error("MD5 digests differ for identical trees")
	}
	c := New(HashSHA256)
	mustPut(t, c, "x", "v", 1)
	if a.RootDigest() == c.RootDigest() {
		t.Error("MD5 and SHA-256 digests collide (suspicious)")
	}
}

func TestEmptyTreeDigestStable(t *testing.T) {
	a, b := New(HashSHA256), New(HashSHA256)
	if a.RootDigest() != b.RootDigest() {
		t.Error("empty trees disagree")
	}
	mustPut(t, a, "k", "v", 1)
	a.Delete("k")
	if a.RootDigest() != b.RootDigest() {
		t.Error("tree after insert+delete differs from empty tree")
	}
}

// Property: two trees built from the same random leaf set (any
// insertion order) always agree on the root digest, and any single
// mutation breaks agreement.
func TestPropertyDigestAgreement(t *testing.T) {
	f := func(sel []uint8, perm16 uint16) bool {
		paths := make(map[string]bool)
		for _, s := range sel {
			paths[fmt.Sprintf("g%d/k%d", s%4, s%16)] = true
		}
		a, b := New(HashSHA256), New(HashSHA256)
		var list []string
		for p := range paths {
			list = append(list, p)
		}
		for i, p := range list {
			if err := a.Put(p, []byte(p), uint64(i)); err != nil {
				return false
			}
		}
		for i := len(list) - 1; i >= 0; i-- {
			if err := b.Put(list[i], []byte(list[i]), uint64(i)); err != nil {
				return false
			}
		}
		if a.RootDigest() != b.RootDigest() {
			return false
		}
		if len(list) > 0 {
			victim := list[int(perm16)%len(list)]
			if err := b.Put(victim, []byte("mutated"), 999); err != nil {
				return false
			}
			if a.RootDigest() == b.RootDigest() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitJoin(t *testing.T) {
	parts, err := SplitPath("a/b/c")
	if err != nil || len(parts) != 3 {
		t.Fatalf("SplitPath = (%v, %v)", parts, err)
	}
	if JoinPath(parts...) != "a/b/c" {
		t.Error("JoinPath round-trip failed")
	}
	if p, err := SplitPath(""); err != nil || p != nil {
		t.Error("root path should split to nil")
	}
	if _, err := SplitPath("/a"); err == nil {
		t.Error("leading slash accepted")
	}
}
