// Package namespace implements SSTP's hierarchical data namespace
// (paper section 6.2): an index tree over the application's data
// units, where every node carries a fixed-length digest of the subtree
// rooted at it, computed recursively with a one-way hash:
//
//	S(n) = H(value(n))                      if n is a leaf ADU
//	S(n) = H(S(c1), S(c2), …, S(ck))        otherwise
//
// A sender periodically announces the root digest ("cold" summary
// transmissions); a receiver that detects a mismatch queries for the
// next level of digests, and loss recovery proceeds recursively down
// only the mismatching branches. Receivers may also prune branches
// they have no application-level interest in.
//
// The paper uses MD5; we default to SHA-256 truncated to 16 bytes
// (any one-way hash preserves the behaviour — see DESIGN.md), with
// MD5 available for fidelity.
package namespace

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sort"
	"strings"
)

// DigestLen is the digest size carried on the wire.
const DigestLen = 16

// Digest is a fixed-length subtree summary.
type Digest [DigestLen]byte

// HashKind selects the one-way hash.
type HashKind int

// Supported hashes.
const (
	HashSHA256 HashKind = iota // default
	HashMD5                    // the paper's choice [RFC 1321]
)

// Tree is a hierarchical namespace over '/'-separated paths. The zero
// value is not usable; construct with New.
type Tree struct {
	root *node
	kind HashKind

	// Reusable hashing state: refresh runs on every digest query along
	// the dirty path, so the hasher, its Sum output, and the scratch
	// buffer for string keys are kept on the Tree instead of being
	// allocated per node visit. The Tree is single-goroutine, like the
	// simulators that drive it.
	h      hash.Hash
	sum    [sha256.Size]byte
	strBuf []byte
}

type node struct {
	children map[string]*node
	names    []string // sorted child names; nil after the child set changes
	leaf     bool
	value    []byte
	version  uint64

	digest    Digest
	leafCount int
	dirty     bool
}

// sortedNames returns the node's child names in sorted order, cached
// until the child set changes.
func (n *node) sortedNames() []string {
	if n.names == nil {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		n.names = names
	}
	return n.names
}

// New returns an empty namespace tree using the given hash.
func New(kind HashKind) *Tree {
	return &Tree{root: newNode(), kind: kind}
}

func newNode() *node {
	return &node{children: make(map[string]*node), dirty: true}
}

// SplitPath validates and splits a '/'-separated path. The empty
// string denotes the root.
func SplitPath(path string) ([]string, error) {
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("namespace: empty component in path %q", path)
		}
	}
	return parts, nil
}

// JoinPath concatenates path components.
func JoinPath(parts ...string) string { return strings.Join(parts, "/") }

// Put stores a leaf ADU at path, creating interior nodes as needed.
// Interior nodes cannot be overwritten by leaves or vice versa.
func (t *Tree) Put(path string, value []byte, version uint64) error {
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("namespace: cannot Put at the root")
	}
	n := t.root
	var trail []*node
	for i, p := range parts {
		trail = append(trail, n)
		child, ok := n.children[p]
		if !ok {
			child = newNode()
			n.children[p] = child
			n.names = nil // child set changed
		}
		if i < len(parts)-1 && child.leaf {
			return fmt.Errorf("namespace: %q is a leaf, cannot descend", JoinPath(parts[:i+1]...))
		}
		n = child
	}
	if len(n.children) > 0 {
		return fmt.Errorf("namespace: %q is an interior node, cannot store a leaf", path)
	}
	n.leaf = true
	n.value = append(n.value[:0], value...)
	n.version = version
	n.dirty = true
	for _, a := range trail {
		a.dirty = true
	}
	return nil
}

// Delete removes the leaf at path and prunes empty interior nodes. It
// reports whether the leaf existed.
func (t *Tree) Delete(path string) bool {
	parts, err := SplitPath(path)
	if err != nil || len(parts) == 0 {
		return false
	}
	var trail []*node
	n := t.root
	for _, p := range parts {
		trail = append(trail, n)
		child, ok := n.children[p]
		if !ok {
			return false
		}
		n = child
	}
	if !n.leaf {
		return false
	}
	delete(trail[len(trail)-1].children, parts[len(parts)-1])
	trail[len(trail)-1].names = nil
	// Prune now-empty interior nodes and dirty the trail.
	for i := len(trail) - 1; i > 0; i-- {
		trail[i].dirty = true
		if len(trail[i].children) == 0 && !trail[i].leaf {
			delete(trail[i-1].children, parts[i-1])
			trail[i-1].names = nil
		}
	}
	trail[0].dirty = true
	return true
}

func (t *Tree) find(path string) (*node, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	n := t.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("namespace: no node at %q", path)
		}
		n = child
	}
	return n, nil
}

// Get returns the value and version of the leaf at path.
func (t *Tree) Get(path string) (value []byte, version uint64, ok bool) {
	n, err := t.find(path)
	if err != nil || !n.leaf {
		return nil, 0, false
	}
	return n.value, n.version, true
}

// Has reports whether any node (leaf or interior) exists at path.
func (t *Tree) Has(path string) bool {
	_, err := t.find(path)
	return err == nil
}

// Hash domain-separation tags (leaf vs interior node preimages).
var (
	tagLeaf     = []byte{0x00}
	tagInterior = []byte{0x01}
)

// hasher returns the Tree's reusable hash, reset and ready to write.
func (t *Tree) hasher() hash.Hash {
	if t.h == nil {
		switch t.kind {
		case HashMD5:
			t.h = md5.New()
		default:
			t.h = sha256.New()
		}
		return t.h
	}
	t.h.Reset()
	return t.h
}

// finish extracts the truncated digest without allocating.
func (t *Tree) finish(h hash.Hash) Digest {
	var out Digest
	copy(out[:], h.Sum(t.sum[:0]))
	return out
}

// writeString hashes a string key through the Tree's scratch buffer,
// avoiding the per-call string→[]byte copy allocation.
func (t *Tree) writeString(h hash.Hash, s string) {
	t.strBuf = append(t.strBuf[:0], s...)
	h.Write(t.strBuf)
}

// refresh recomputes digests bottom-up where dirty. The preimages are
// the same byte streams as always — tag ‖ little-endian version ‖
// value for leaves, tag ‖ (name ‖ child digest)* for interior nodes —
// written incrementally instead of assembled into slices.
func (t *Tree) refresh(n *node) {
	if !n.dirty {
		return
	}
	if n.leaf {
		h := t.hasher()
		t.strBuf = append(t.strBuf[:0], tagLeaf...)
		t.strBuf = binary.LittleEndian.AppendUint64(t.strBuf, n.version)
		h.Write(t.strBuf)
		h.Write(n.value)
		n.digest = t.finish(h)
		n.leafCount = 1
		n.dirty = false
		return
	}
	// Children first: they share the Tree's hasher, so the parent's
	// own hashing must not be in flight while descending.
	n.leafCount = 0
	for _, name := range n.sortedNames() {
		c := n.children[name]
		t.refresh(c)
		n.leafCount += c.leafCount
	}
	h := t.hasher()
	h.Write(tagInterior)
	for _, name := range n.sortedNames() {
		t.writeString(h, name)
		h.Write(n.children[name].digest[:])
	}
	n.digest = t.finish(h)
	n.dirty = false
}

// RootDigest returns the digest of the whole namespace.
func (t *Tree) RootDigest() Digest {
	t.refresh(t.root)
	return t.root.digest
}

// Digest returns the digest of the subtree at path.
func (t *Tree) Digest(path string) (Digest, error) {
	n, err := t.find(path)
	if err != nil {
		return Digest{}, err
	}
	t.refresh(t.root)
	return n.digest, nil
}

// LeafCount returns the number of leaves under path.
func (t *Tree) LeafCount(path string) (int, error) {
	n, err := t.find(path)
	if err != nil {
		return 0, err
	}
	t.refresh(t.root)
	return n.leafCount, nil
}

// Child summarizes one child of a queried node.
type Child struct {
	Name   string
	Leaf   bool
	Digest Digest
}

// Children returns the sorted child summaries of the node at path —
// the payload of a Digests response in the descent protocol.
func (t *Tree) Children(path string) ([]Child, error) {
	n, err := t.find(path)
	if err != nil {
		return nil, err
	}
	t.refresh(t.root)
	names := n.sortedNames()
	out := make([]Child, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		out = append(out, Child{Name: name, Leaf: c.leaf, Digest: c.digest})
	}
	return out, nil
}

// AppendChildren is Children appending into dst: hot paths that answer
// digest queries per received datagram can recycle one scratch slice
// instead of allocating a fresh listing per call.
func (t *Tree) AppendChildren(dst []Child, path string) ([]Child, error) {
	n, err := t.find(path)
	if err != nil {
		return dst, err
	}
	t.refresh(t.root)
	for _, name := range n.sortedNames() {
		c := n.children[name]
		dst = append(dst, Child{Name: name, Leaf: c.leaf, Digest: c.digest})
	}
	return dst, nil
}

// Leaves returns all leaf paths under path (inclusive), sorted.
func (t *Tree) Leaves(path string) ([]string, error) {
	n, err := t.find(path)
	if err != nil {
		return nil, err
	}
	var out []string
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		if n.leaf {
			out = append(out, prefix)
			return
		}
		for _, name := range n.sortedNames() {
			p := name
			if prefix != "" {
				p = prefix + "/" + name
			}
			walk(n.children[name], p)
		}
	}
	walk(n, path)
	return out, nil
}

// Len returns the total number of leaves.
func (t *Tree) Len() int {
	t.refresh(t.root)
	return t.root.leafCount
}

// DiffChildren compares the local children of path against a remote
// child list and returns the child paths that need further descent or
// repair: children whose digests differ, plus remote children missing
// locally. The `missingLocally` result lists remote names absent from
// the local tree (the receiver must fetch the whole branch); `differ`
// lists names present on both sides with mismatching digests.
func (t *Tree) DiffChildren(path string, remote []Child) (differ, missingLocally []string, err error) {
	local, err := t.Children(path)
	if err != nil {
		// The whole node is missing locally: everything remote is new.
		for _, r := range remote {
			missingLocally = append(missingLocally, r.Name)
		}
		return nil, missingLocally, nil
	}
	byName := make(map[string]Child, len(local))
	for _, c := range local {
		byName[c.Name] = c
	}
	for _, r := range remote {
		l, ok := byName[r.Name]
		if !ok {
			missingLocally = append(missingLocally, r.Name)
			continue
		}
		if l.Digest != r.Digest {
			differ = append(differ, r.Name)
		}
	}
	return differ, missingLocally, nil
}
