// Forest: the namespace tree sharded by top-level component.
//
// When the table layer stripes keys by their first '/'-component
// (table.StripeIndex), every top-level namespace subtree lives wholly
// inside one stripe. Each stripe then maintains an ordinary Tree, and
// the root digest of the unsharded namespace is recoverable exactly:
// the root preimage is tagInterior ‖ (name ‖ childDigest)* over the
// sorted top-level children, and that fold can be replayed from the
// per-stripe children merged by name. CombineRoot does exactly that,
// so a striped publisher's summary announcements are byte-identical
// to an unsharded one's (pinned by golden test).
//
// A Forest carries no locking: callers guard each Tree with the same
// per-stripe lock that guards the corresponding table stripe, keeping
// table mutation and digest update atomic per key.
package namespace

import (
	"crypto/md5"
	"crypto/sha256"
	"hash"
	"sort"
)

// Forest is a fixed set of per-stripe namespace trees.
type Forest struct {
	kind  HashKind
	trees []*Tree
}

// NewForest returns a forest of n independent trees (n >= 1) sharing
// one hash kind.
func NewForest(n int, kind HashKind) *Forest {
	if n < 1 {
		n = 1
	}
	f := &Forest{kind: kind, trees: make([]*Tree, n)}
	for i := range f.trees {
		f.trees[i] = New(kind)
	}
	return f
}

// Size returns the number of stripes.
func (f *Forest) Size() int { return len(f.trees) }

// Tree returns stripe i's tree. The caller owns synchronization.
func (f *Forest) Tree(i int) *Tree { return f.trees[i] }

// Kind returns the forest's hash kind.
func (f *Forest) Kind() HashKind { return f.kind }

// RootDigest combines the stripes' top-level children into the digest
// the unsharded tree would report for the same contents. It refreshes
// every stripe; the caller must hold all stripe locks (or otherwise
// have exclusive access).
func (f *Forest) RootDigest() Digest {
	if len(f.trees) == 1 {
		return f.trees[0].RootDigest()
	}
	groups := make([][]Child, len(f.trees))
	for i, t := range f.trees {
		groups[i], _ = t.Children("")
	}
	return CombineRoot(f.kind, CombineChildren(groups...))
}

// LeafCount sums the stripes' leaf counts. Caller owns synchronization.
func (f *Forest) LeafCount() int {
	n := 0
	for _, t := range f.trees {
		n += t.Len()
	}
	return n
}

// CombineChildren merges per-stripe child lists into one list sorted
// by name — the root's child set as the unsharded tree would report
// it. Stripes hold disjoint top-level names by construction, so this
// is a merge, never a join.
func CombineChildren(groups ...[]Child) []Child {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]Child, 0, total)
	for _, g := range groups {
		out = append(out, g...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CombineRoot folds sorted top-level children into a root digest with
// exactly the interior-node preimage Tree.refresh uses: tagInterior ‖
// (name ‖ childDigest)*. Feeding it CombineChildren of the stripes'
// root children yields a digest byte-identical to the unsharded
// tree's RootDigest for the same contents (pinned by golden test).
func CombineRoot(kind HashKind, children []Child) Digest {
	var h hash.Hash
	switch kind {
	case HashMD5:
		h = md5.New()
	default:
		h = sha256.New()
	}
	h.Write(tagInterior)
	var scratch [64]byte
	for _, c := range children {
		buf := append(scratch[:0], c.Name...)
		h.Write(buf)
		h.Write(c.Digest[:])
	}
	var sum [sha256.Size]byte
	var out Digest
	copy(out[:], h.Sum(sum[:0]))
	return out
}
