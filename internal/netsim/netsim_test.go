package netsim

import (
	"math"
	"testing"

	"softstate/internal/eventsim"
	"softstate/internal/xrand"
)

func TestBernoulliLossMean(t *testing.T) {
	r := xrand.New(1)
	m := NewBernoulliLoss(0.3, r)
	if m.MeanRate() != 0.3 {
		t.Errorf("MeanRate = %v", m.MeanRate())
	}
	losses := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Lose() {
			losses++
		}
	}
	got := float64(losses) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("empirical loss = %v", got)
	}
}

func TestBernoulliLossValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1.5 did not panic")
		}
	}()
	NewBernoulliLoss(1.5, xrand.New(1))
}

func TestGilbertElliottStationaryMean(t *testing.T) {
	r := xrand.New(2)
	g := NewGilbertElliottWithMean(0.2, 5, r)
	if math.Abs(g.MeanRate()-0.2) > 1e-9 {
		t.Fatalf("analytic MeanRate = %v, want 0.2", g.MeanRate())
	}
	const n = 300000
	for i := 0; i < n; i++ {
		g.Lose()
	}
	if math.Abs(g.ObservedRate()-0.2) > 0.015 {
		t.Errorf("empirical loss = %v, want ~0.2", g.ObservedRate())
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With burst length 10 the loss run-length distribution must show
	// substantially longer runs than Bernoulli at the same mean.
	r := xrand.New(3)
	g := NewGilbertElliottWithMean(0.2, 10, r)
	runs, cur := []int{}, 0
	for i := 0; i < 200000; i++ {
		if g.Lose() {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	sum := 0
	for _, v := range runs {
		sum += v
	}
	meanRun := float64(sum) / float64(len(runs))
	// Bernoulli(0.2) mean run length = 1/(1-0.2) = 1.25.
	if meanRun < 3 {
		t.Errorf("mean loss burst = %v, want >> 1.25", meanRun)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGilbertElliott(0, 0, 0, 1, xrand.New(1)) },
		func() { NewGilbertElliott(-0.1, 0.5, 0, 1, xrand.New(1)) },
		func() { NewGilbertElliottWithMean(1.0, 5, xrand.New(1)) },
		func() { NewGilbertElliottWithMean(0.2, 0.5, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Gilbert–Elliott params did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNoLoss(t *testing.T) {
	var m NoLoss
	for i := 0; i < 100; i++ {
		if m.Lose() {
			t.Fatal("NoLoss lost a packet")
		}
	}
	if m.MeanRate() != 0 {
		t.Error("NoLoss MeanRate != 0")
	}
}

func TestChannelServiceTime(t *testing.T) {
	sim := eventsim.New()
	ch := NewChannel(sim, 1000) // 1000 bps
	ch.AddReceiver(NoLoss{}, 0)
	var deliveredAt eventsim.Time
	ch.Transmit(500, func(rcv int, ok bool) {
		if !ok {
			t.Error("lossless path dropped")
		}
		deliveredAt = sim.Now()
	})
	if !ch.Busy() {
		t.Error("channel should be busy during service")
	}
	sim.Run()
	if deliveredAt != 0.5 { // 500 bits / 1000 bps
		t.Errorf("delivered at %v, want 0.5", deliveredAt)
	}
	if ch.Busy() {
		t.Error("channel should be idle after service")
	}
	if ch.Transmissions() != 1 || ch.BitsSent() != 500 {
		t.Errorf("counters: %d tx, %v bits", ch.Transmissions(), ch.BitsSent())
	}
}

func TestChannelPropagationDelay(t *testing.T) {
	sim := eventsim.New()
	ch := NewChannel(sim, 1000)
	ch.AddReceiver(NoLoss{}, 0.25)
	var at eventsim.Time
	ch.Transmit(1000, func(rcv int, ok bool) { at = sim.Now() })
	sim.Run()
	if at != 1.25 { // 1s service + 0.25s propagation
		t.Errorf("delivered at %v, want 1.25", at)
	}
}

func TestChannelPerReceiverLoss(t *testing.T) {
	sim := eventsim.New()
	ch := NewChannel(sim, 1e6)
	ch.AddReceiver(NoLoss{}, 0)
	ch.AddReceiver(NewBernoulliLoss(1, xrand.New(1)), 0) // always loses
	got := map[int]bool{}
	var next func()
	count := 0
	next = func() {
		if count >= 10 {
			return
		}
		count++
		ch.Transmit(100, func(rcv int, ok bool) { got[rcv] = got[rcv] || ok })
	}
	ch.OnIdle = next
	next()
	sim.Run()
	if !got[0] {
		t.Error("receiver 0 never received")
	}
	if got[1] {
		t.Error("receiver 1 (p=1 loss) received")
	}
	if ch.Transmissions() != 10 {
		t.Errorf("transmissions = %d", ch.Transmissions())
	}
}

func TestChannelLostDeliveryCallback(t *testing.T) {
	// Lost packets must still invoke deliver(rcv, false) at service
	// completion so the model can account for the loss.
	sim := eventsim.New()
	ch := NewChannel(sim, 1000)
	ch.AddReceiver(NewBernoulliLoss(1, xrand.New(1)), 0.5)
	var at eventsim.Time = -1
	var delivered bool
	ch.Transmit(1000, func(rcv int, ok bool) { at, delivered = sim.Now(), ok })
	sim.Run()
	if delivered {
		t.Error("p=1 loss delivered")
	}
	if at != 1 { // loss reported at service completion, no propagation
		t.Errorf("loss reported at %v, want 1", at)
	}
}

func TestChannelDoubleTransmitPanics(t *testing.T) {
	sim := eventsim.New()
	ch := NewChannel(sim, 1000)
	ch.Transmit(100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double transmit did not panic")
		}
	}()
	ch.Transmit(100, nil)
}

func TestChannelOnIdleChaining(t *testing.T) {
	// Drive 5 back-to-back transmissions purely from OnIdle; total
	// time must be exactly 5 service times.
	sim := eventsim.New()
	ch := NewChannel(sim, 100)
	ch.AddReceiver(NoLoss{}, 0)
	n := 0
	ch.OnIdle = func() {
		if n < 4 {
			n++
			ch.Transmit(100, nil)
		}
	}
	ch.Transmit(100, nil)
	sim.Run()
	if sim.Now() != 5 {
		t.Errorf("5 transmissions took %v, want 5", sim.Now())
	}
}

func TestChannelSetRate(t *testing.T) {
	sim := eventsim.New()
	ch := NewChannel(sim, 100)
	ch.SetRate(200)
	if ch.Rate() != 200 {
		t.Errorf("Rate = %v", ch.Rate())
	}
	ch.AddReceiver(NoLoss{}, 0)
	ch.Transmit(100, nil)
	sim.Run()
	if sim.Now() != 0.5 {
		t.Errorf("service at 200 bps took %v, want 0.5", sim.Now())
	}
}

func TestChannelValidation(t *testing.T) {
	sim := eventsim.New()
	for _, fn := range []func(){
		func() { NewChannel(sim, 0) },
		func() { NewChannel(sim, 100).AddReceiver(nil, 0) },
		func() { NewChannel(sim, 100).AddReceiver(NoLoss{}, -1) },
		func() { NewChannel(sim, 100).Transmit(0, nil) },
		func() { NewChannel(sim, 100).SetRate(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid channel usage did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFeedbackLinkFIFO(t *testing.T) {
	sim := eventsim.New()
	fl := NewFeedbackLink(sim, 100, nil, 0, 0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		fl.Send(100, func() { order = append(order, i) })
	}
	if fl.QueueLen() != 2 { // one in service, two queued
		t.Errorf("QueueLen = %d, want 2", fl.QueueLen())
	}
	sim.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("delivery order = %v", order)
	}
	if sim.Now() != 3 {
		t.Errorf("3 services took %v, want 3", sim.Now())
	}
	if fl.Sent() != 3 || fl.BitsSent() != 300 {
		t.Errorf("Sent=%d Bits=%v", fl.Sent(), fl.BitsSent())
	}
}

func TestFeedbackLinkQueueLimit(t *testing.T) {
	sim := eventsim.New()
	fl := NewFeedbackLink(sim, 100, nil, 0, 2)
	delivered := 0
	for i := 0; i < 5; i++ {
		fl.Send(100, func() { delivered++ })
	}
	sim.Run()
	if fl.Dropped() != 2 { // 1 in service + 2 queued, 2 dropped
		t.Errorf("Dropped = %d, want 2", fl.Dropped())
	}
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
}

func TestFeedbackLinkLoss(t *testing.T) {
	sim := eventsim.New()
	fl := NewFeedbackLink(sim, 1000, NewBernoulliLoss(1, xrand.New(1)), 0, 0)
	delivered := false
	fl.Send(100, func() { delivered = true })
	sim.Run()
	if delivered {
		t.Error("p=1 loss feedback delivered")
	}
	if fl.Sent() != 1 {
		t.Errorf("Sent = %d (lost on wire still counts as serviced)", fl.Sent())
	}
}

func TestFeedbackLinkDelay(t *testing.T) {
	sim := eventsim.New()
	fl := NewFeedbackLink(sim, 100, nil, 0.5, 0)
	var at eventsim.Time
	fl.Send(100, func() { at = sim.Now() })
	sim.Run()
	if at != 1.5 {
		t.Errorf("delivered at %v, want 1.5", at)
	}
}

func TestFeedbackLinkValidation(t *testing.T) {
	sim := eventsim.New()
	for _, fn := range []func(){
		func() { NewFeedbackLink(sim, 0, nil, 0, 0) },
		func() { NewFeedbackLink(sim, 10, nil, 0, 0).Send(0, nil) },
		func() { NewFeedbackLink(sim, 10, nil, 0, 0).SetRate(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid feedback usage did not panic")
				}
			}()
			fn()
		}()
	}
}
