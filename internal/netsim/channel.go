package netsim

import (
	"fmt"

	"softstate/internal/eventsim"
	"softstate/internal/obs"
)

// Channel is a finite-capacity broadcast link: one sender, N receiver
// paths, service rate Rate bits/second. A transmission occupies the
// channel for size/Rate seconds (the "service" of the paper's queueing
// model); on completion, each receiver path independently decides loss
// and, if delivered, the payload arrives after the path's propagation
// delay.
//
// The channel does not queue: the protocol engine holds the
// transmission queues (hot/cold/FIFO) and offers the next packet when
// the channel goes idle via the OnIdle callback. This mirrors the
// paper's model, where scheduling policy is the object under study.
type Channel struct {
	sim   *eventsim.Sim
	rate  float64
	paths []path
	busy  bool

	// OnIdle, if non-nil, fires each time the channel finishes a
	// service and becomes free. Protocol engines use it to pull the
	// next packet from their queues.
	OnIdle func()

	// In-flight service state plus a prebuilt completion callback, so
	// Transmit schedules the service-done event without allocating a
	// closure per packet.
	curSize    float64
	curDeliver func(receiver int, delivered bool)
	done       func()

	// Counters.
	transmissions int
	bitsSent      float64

	txC   *obs.Counter
	bitsC *obs.Counter
	lossC *obs.Counter
}

// Instrument publishes channel activity to reg, labelled to tell
// multiple channels apart (e.g. "link", "hot"):
// netsim_transmissions_total, netsim_bits_sent_total, and
// netsim_losses_total (per-path loss coin flips that came up lost).
// Safe with a nil registry.
func (c *Channel) Instrument(reg *obs.Registry, labels ...string) {
	c.txC = reg.Counter("netsim_transmissions_total", labels...)
	c.bitsC = reg.Counter("netsim_bits_sent_total", labels...)
	c.lossC = reg.Counter("netsim_losses_total", labels...)
}

type path struct {
	loss  LossModel
	delay float64
}

// NewChannel creates a broadcast channel on sim with the given service
// rate in bits per second.
func NewChannel(sim *eventsim.Sim, rate float64) *Channel {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: channel rate %v must be positive", rate))
	}
	c := &Channel{sim: sim, rate: rate}
	c.done = c.serviceDone
	return c
}

// AddReceiver attaches a receiver path with its own loss model and
// propagation delay, returning the receiver's index.
func (c *Channel) AddReceiver(loss LossModel, delay float64) int {
	if loss == nil {
		panic("netsim: nil loss model")
	}
	if delay < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", delay))
	}
	c.paths = append(c.paths, path{loss: loss, delay: delay})
	return len(c.paths) - 1
}

// Receivers returns the number of attached receiver paths.
func (c *Channel) Receivers() int { return len(c.paths) }

// Rate returns the channel's service rate in bits per second.
func (c *Channel) Rate() float64 { return c.rate }

// SetRate changes the service rate for subsequent transmissions (used
// by adaptive allocators). The in-flight transmission, if any, is
// unaffected.
func (c *Channel) SetRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: channel rate %v must be positive", rate))
	}
	c.rate = rate
}

// Busy reports whether a transmission is in progress.
func (c *Channel) Busy() bool { return c.busy }

// Transmissions returns the number of completed services.
func (c *Channel) Transmissions() int { return c.transmissions }

// BitsSent returns the total bits serviced.
func (c *Channel) BitsSent() float64 { return c.bitsSent }

// Transmit begins servicing a packet of the given size in bits. When
// service completes, deliver(receiver, delivered) is invoked once per
// receiver path — after that path's propagation delay for delivered
// packets, immediately (at service-completion time) for lost ones so
// the sender-side model can account for the loss. The channel then
// becomes idle and OnIdle fires.
//
// Transmitting on a busy channel panics: the protocol engines are
// required to respect Busy, and masking a double-transmit would
// corrupt the utilization and consistency measurements.
func (c *Channel) Transmit(sizeBits float64, deliver func(receiver int, delivered bool)) {
	if c.busy {
		panic("netsim: Transmit on busy channel")
	}
	if sizeBits <= 0 {
		panic(fmt.Sprintf("netsim: packet size %v must be positive", sizeBits))
	}
	c.busy = true
	c.curSize = sizeBits
	c.curDeliver = deliver
	c.sim.After(sizeBits/c.rate, c.done)
}

// serviceDone completes the in-flight service: account it, run the
// per-path loss/delivery outcomes, then report idle. The in-flight
// state is snapshotted first because a deliver callback may start the
// next Transmit reentrantly (the engines pump from the final
// delivery).
func (c *Channel) serviceDone() {
	sizeBits, deliver := c.curSize, c.curDeliver
	c.curDeliver = nil
	c.busy = false
	c.transmissions++
	c.bitsSent += sizeBits
	c.txC.Inc()
	c.bitsC.Add(uint64(sizeBits))
	for i := range c.paths {
		p := &c.paths[i]
		if p.loss.Lose() {
			c.lossC.Inc()
			if deliver != nil {
				deliver(i, false)
			}
			continue
		}
		if deliver != nil {
			if p.delay == 0 {
				deliver(i, true)
			} else {
				i := i
				c.sim.After(p.delay, func() { deliver(i, true) })
			}
		}
	}
	if c.OnIdle != nil {
		c.OnIdle()
	}
}

// FeedbackLink is the receiver→sender path: a finite-rate FIFO queue
// with optional loss. Unlike Channel it queues internally, because
// feedback senders (receivers generating NACKs) are not modelled as
// schedulers — they fire and forget. If the queue is full, the
// message is dropped (feedback bandwidth starvation is exactly the
// collapse regime of the paper's Figure 8).
type FeedbackLink struct {
	sim      *eventsim.Sim
	rate     float64
	loss     LossModel
	delay    float64
	maxQueue int

	// OnDeliver, if non-nil, receives the payload of every message
	// sent with SendPayload that survives the loss coin-flip. A single
	// link-level callback lets hot senders avoid allocating a closure
	// per message.
	OnDeliver func(payload any)

	queue []feedbackMsg
	head  int // index of the next message to serve; queue[:head] is spent
	cur   feedbackMsg
	done  func()

	busy    bool
	sent    int
	dropped int
	bits    float64

	sentC *obs.Counter
	dropC *obs.Counter
	bitsC *obs.Counter
	qlenG *obs.Gauge
}

// Instrument publishes feedback-path activity to reg:
// netsim_feedback_sent_total, netsim_feedback_dropped_total,
// netsim_feedback_bits_total, and the netsim_feedback_queue_len gauge.
// Safe with a nil registry.
func (f *FeedbackLink) Instrument(reg *obs.Registry) {
	f.sentC = reg.Counter("netsim_feedback_sent_total")
	f.dropC = reg.Counter("netsim_feedback_dropped_total")
	f.bitsC = reg.Counter("netsim_feedback_bits_total")
	f.qlenG = reg.Gauge("netsim_feedback_queue_len")
}

type feedbackMsg struct {
	bits    float64
	deliver func()
	payload any
}

// NewFeedbackLink creates a feedback path with the given rate (bits
// per second), loss model, propagation delay, and maximum queue
// length (messages; 0 means unbounded).
func NewFeedbackLink(sim *eventsim.Sim, rate float64, loss LossModel, delay float64, maxQueue int) *FeedbackLink {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: feedback rate %v must be positive", rate))
	}
	if loss == nil {
		loss = NoLoss{}
	}
	f := &FeedbackLink{sim: sim, rate: rate, loss: loss, delay: delay, maxQueue: maxQueue}
	f.done = f.serviceDone
	return f
}

// Rate returns the link rate in bits per second.
func (f *FeedbackLink) Rate() float64 { return f.rate }

// SetRate changes the link rate for subsequent services.
func (f *FeedbackLink) SetRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: feedback rate %v must be positive", rate))
	}
	f.rate = rate
}

// Sent returns the number of messages that completed service
// (delivered or lost on the wire).
func (f *FeedbackLink) Sent() int { return f.sent }

// Dropped returns the number of messages dropped at the queue.
func (f *FeedbackLink) Dropped() int { return f.dropped }

// BitsSent returns total bits serviced on the feedback path.
func (f *FeedbackLink) BitsSent() float64 { return f.bits }

// QueueLen returns the number of messages waiting (excluding the one
// in service).
func (f *FeedbackLink) QueueLen() int { return len(f.queue) - f.head }

// Send enqueues a feedback message of the given size; deliver runs at
// the sender after service, propagation, and the loss coin-flip all
// succeed.
func (f *FeedbackLink) Send(sizeBits float64, deliver func()) {
	f.enqueue(feedbackMsg{bits: sizeBits, deliver: deliver})
}

// SendPayload enqueues a feedback message whose delivery is reported
// through the link-level OnDeliver callback with the given payload.
// Unlike Send it needs no per-message closure, which keeps the NACK
// hot path allocation-free.
func (f *FeedbackLink) SendPayload(sizeBits float64, payload any) {
	f.enqueue(feedbackMsg{bits: sizeBits, payload: payload})
}

func (f *FeedbackLink) enqueue(msg feedbackMsg) {
	if msg.bits <= 0 {
		panic(fmt.Sprintf("netsim: feedback size %v must be positive", msg.bits))
	}
	if f.maxQueue > 0 && f.QueueLen() >= f.maxQueue {
		f.dropped++
		f.dropC.Inc()
		return
	}
	if f.head > 0 && f.head == len(f.queue) {
		// Every buffered message is spent: rewind so the backing
		// array is reused instead of growing without bound.
		f.queue = f.queue[:0]
		f.head = 0
	}
	f.queue = append(f.queue, msg)
	f.qlenG.Set(float64(f.QueueLen()))
	if !f.busy {
		f.serveNext()
	}
}

func (f *FeedbackLink) serveNext() {
	if f.head == len(f.queue) {
		f.queue = f.queue[:0]
		f.head = 0
		f.busy = false
		return
	}
	f.busy = true
	msg := f.queue[f.head]
	f.queue[f.head] = feedbackMsg{} // release references while queued
	f.head++
	f.qlenG.Set(float64(f.QueueLen()))
	f.cur = msg
	f.sim.After(msg.bits/f.rate, f.done)
}

// serviceDone completes the in-flight feedback service and starts the
// next one.
func (f *FeedbackLink) serviceDone() {
	msg := f.cur
	f.cur = feedbackMsg{}
	f.sent++
	f.bits += msg.bits
	f.sentC.Inc()
	f.bitsC.Add(uint64(msg.bits))
	if !f.loss.Lose() {
		switch {
		case msg.deliver != nil:
			if f.delay == 0 {
				msg.deliver()
			} else {
				f.sim.After(f.delay, msg.deliver)
			}
		case f.OnDeliver != nil:
			if f.delay == 0 {
				f.OnDeliver(msg.payload)
			} else {
				payload := msg.payload
				f.sim.After(f.delay, func() { f.OnDeliver(payload) })
			}
		}
	}
	f.serveNext()
}
