// Package netsim models the lossy, finite-capacity communication
// channel of the soft-state model: a single server with service rate
// μ_ch (bits per second), a propagation delay, and per-receiver packet
// loss. Loss is pluggable: the paper argues the consistency metric is
// sensitive only to the mean loss rate, so alongside the i.i.d.
// Bernoulli model used in the analysis we provide a bursty
// Gilbert–Elliott model to test that claim (an ablation bench
// exercises both).
package netsim

import (
	"fmt"

	"softstate/internal/xrand"
)

// LossModel decides the fate of successive transmissions on a path.
// Implementations may be stateful (e.g. Gilbert–Elliott); each
// receiver path owns its own instance.
type LossModel interface {
	// Lose reports whether the next packet on this path is dropped.
	Lose() bool
	// MeanRate returns the long-run average loss probability.
	MeanRate() float64
}

// BernoulliLoss drops each packet independently with probability P.
// This is the loss process assumed by the paper's analysis.
type BernoulliLoss struct {
	P   float64
	rnd *xrand.Rand
}

// NewBernoulliLoss returns an i.i.d. loss model with probability p.
func NewBernoulliLoss(p float64, rnd *xrand.Rand) *BernoulliLoss {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("netsim: loss probability %v out of [0,1]", p))
	}
	return &BernoulliLoss{P: p, rnd: rnd}
}

// Lose implements LossModel.
func (b *BernoulliLoss) Lose() bool { return b.rnd.Bernoulli(b.P) }

// MeanRate implements LossModel.
func (b *BernoulliLoss) MeanRate() float64 { return b.P }

// GilbertElliott is a two-state Markov loss model producing bursty
// loss. In the Good state packets drop with probability LossGood; in
// the Bad state with probability LossBad. After each packet the chain
// moves Good→Bad with probability PGB and Bad→Good with probability
// PBG.
type GilbertElliott struct {
	PGB, PBG           float64
	LossGood, LossBad  float64
	rnd                *xrand.Rand
	bad                bool
	transmitted, drops int
}

// NewGilbertElliott returns a bursty loss model starting in the Good
// state. All probabilities must lie in [0,1], and PGB+PBG must be
// positive (otherwise the chain never mixes).
func NewGilbertElliott(pgb, pbg, lossGood, lossBad float64, rnd *xrand.Rand) *GilbertElliott {
	for _, p := range []float64{pgb, pbg, lossGood, lossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("netsim: Gilbert–Elliott probability %v out of [0,1]", p))
		}
	}
	if pgb+pbg <= 0 {
		panic("netsim: Gilbert–Elliott chain cannot mix with PGB+PBG = 0")
	}
	return &GilbertElliott{PGB: pgb, PBG: pbg, LossGood: lossGood, LossBad: lossBad, rnd: rnd}
}

// NewGilbertElliottWithMean constructs a bursty model whose stationary
// mean loss rate equals mean, with the given expected burst length
// (mean packets spent in the Bad state per visit). The Bad state drops
// everything and the Good state drops nothing.
func NewGilbertElliottWithMean(mean, burstLen float64, rnd *xrand.Rand) *GilbertElliott {
	if mean < 0 || mean >= 1 {
		panic(fmt.Sprintf("netsim: mean loss %v out of [0,1)", mean))
	}
	if burstLen < 1 {
		panic(fmt.Sprintf("netsim: burst length %v < 1", burstLen))
	}
	// Stationary P(bad) = PGB/(PGB+PBG) = mean; E[burst] = 1/PBG.
	pbg := 1 / burstLen
	var pgb float64
	if mean > 0 {
		pgb = mean * pbg / (1 - mean)
	}
	if pgb > 1 {
		pgb = 1
	}
	return NewGilbertElliott(pgb, pbg, 0, 1, rnd)
}

// Lose implements LossModel.
func (g *GilbertElliott) Lose() bool {
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	lost := g.rnd.Bernoulli(p)
	// State transition after the packet.
	if g.bad {
		if g.rnd.Bernoulli(g.PBG) {
			g.bad = false
		}
	} else {
		if g.rnd.Bernoulli(g.PGB) {
			g.bad = true
		}
	}
	g.transmitted++
	if lost {
		g.drops++
	}
	return lost
}

// MeanRate implements LossModel, returning the stationary loss rate.
func (g *GilbertElliott) MeanRate() float64 {
	pBad := g.PGB / (g.PGB + g.PBG)
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// ObservedRate returns the empirical loss fraction so far (0 if no
// packets have crossed).
func (g *GilbertElliott) ObservedRate() float64 {
	if g.transmitted == 0 {
		return 0
	}
	return float64(g.drops) / float64(g.transmitted)
}

// NoLoss is a loss-free path, useful for feedback channels and tests.
type NoLoss struct{}

// Lose implements LossModel.
func (NoLoss) Lose() bool { return false }

// MeanRate implements LossModel.
func (NoLoss) MeanRate() float64 { return 0 }
