package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestRingOrdering(t *testing.T) {
	r := New(10)
	for i := 0; i < 5; i++ {
		r.Record(float64(i), Arrive, "k", -1)
	}
	evs := r.Events()
	if len(evs) != 5 || r.Len() != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.T != float64(i) {
			t.Fatalf("out of order: %+v", evs)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Record(float64(i), Transmit, "k", -1)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].T != 4 || evs[2].T != 6 {
		t.Errorf("wrong window after wrap: %+v", evs)
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestTimelineAndFilter(t *testing.T) {
	r := New(16)
	r.Record(0, Arrive, "a", -1)
	r.Record(1, Transmit, "a", -1)
	r.Record(1.5, Arrive, "b", -1)
	r.Record(2, Deliver, "a", 0)
	r.Record(3, Die, "a", -1)
	tl := r.Timeline("a")
	if len(tl) != 4 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl[0].Kind != Arrive || tl[3].Kind != Die {
		t.Errorf("timeline order: %+v", tl)
	}
	deliveries := r.Filter(func(e Event) bool { return e.Kind == Deliver })
	if len(deliveries) != 1 || deliveries[0].Receiver != 0 {
		t.Errorf("filter = %+v", deliveries)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := New(4)
	r.Record(1.25, Deliver, "x/y", 2)
	r.Record(2, Die, "x/y", -1)
	out := r.Dump()
	if !strings.Contains(out, "DELIVER") || !strings.Contains(out, "rcv=2") {
		t.Errorf("dump = %q", out)
	}
	if !strings.Contains(out, "DIE") || strings.Contains(strings.Split(out, "\n")[1], "rcv=") {
		t.Errorf("non-receiver event printed a receiver: %q", out)
	}
	if Kind(99).String() != "KIND(99)" {
		t.Error("unknown kind should stringify numerically")
	}
}

// TestKindNames guards against adding a Kind without updating the
// name table: every declared kind must have a stable, non-fallback
// name, and the fallback itself must round-trip through ParseKind.
func TestKindNames(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "KIND(") {
			t.Errorf("kind %d has no name (got %q); update kindNames", k, name)
		}
		parsed, err := ParseKind(name)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, parsed, err, k)
		}
	}
	if k, err := ParseKind("KIND(42)"); err != nil || k != Kind(42) {
		t.Errorf("fallback did not round-trip: %v, %v", k, err)
	}
	if _, err := ParseKind("BOGUS"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	cases := []Event{
		{T: 1.5, Kind: Deliver, Key: "a/b", Receiver: 3},
		{T: 2, Kind: Die, Key: "x", Receiver: -1},
		{T: 0.25, Kind: Kind(42), Key: "weird", Receiver: -1},
	}
	for _, want := range cases {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal %+v: %v", want, err)
		}
		var got Event
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got != want {
			t.Errorf("round trip %s: got %+v want %+v", data, got, want)
		}
	}
	// The receiver field is omitted when not receiver-specific.
	data, _ := json.Marshal(Event{T: 1, Kind: Arrive, Key: "k", Receiver: -1})
	if strings.Contains(string(data), "rcv") {
		t.Errorf("rcv not omitted: %s", data)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := New(8)
	r.Record(1, Arrive, "a", -1)
	r.Record(2, Deliver, "a", 0)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != Deliver || e.Receiver != 0 {
		t.Errorf("line 2 = %+v", e)
	}
}

// TestSafeRingConcurrent hammers a NewSafe ring from parallel writers
// while readers snapshot — meaningful under -race.
func TestSafeRingConcurrent(t *testing.T) {
	r := NewSafe(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(float64(i), Kind(i%int(NumKinds)), "k", w)
			}
		}(w)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Events()
				_ = r.Len()
				_ = r.Dump()
				_ = r.WriteJSONL(io.Discard)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Errorf("Total = %d, want 2000", r.Total())
	}
	if r.Len() != 64 {
		t.Errorf("Len = %d, want 64", r.Len())
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New(0)
}
