package trace

import (
	"strings"
	"testing"
)

func TestRingOrdering(t *testing.T) {
	r := New(10)
	for i := 0; i < 5; i++ {
		r.Record(float64(i), Arrive, "k", -1)
	}
	evs := r.Events()
	if len(evs) != 5 || r.Len() != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.T != float64(i) {
			t.Fatalf("out of order: %+v", evs)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Record(float64(i), Transmit, "k", -1)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].T != 4 || evs[2].T != 6 {
		t.Errorf("wrong window after wrap: %+v", evs)
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestTimelineAndFilter(t *testing.T) {
	r := New(16)
	r.Record(0, Arrive, "a", -1)
	r.Record(1, Transmit, "a", -1)
	r.Record(1.5, Arrive, "b", -1)
	r.Record(2, Deliver, "a", 0)
	r.Record(3, Die, "a", -1)
	tl := r.Timeline("a")
	if len(tl) != 4 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl[0].Kind != Arrive || tl[3].Kind != Die {
		t.Errorf("timeline order: %+v", tl)
	}
	deliveries := r.Filter(func(e Event) bool { return e.Kind == Deliver })
	if len(deliveries) != 1 || deliveries[0].Receiver != 0 {
		t.Errorf("filter = %+v", deliveries)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := New(4)
	r.Record(1.25, Deliver, "x/y", 2)
	r.Record(2, Die, "x/y", -1)
	out := r.Dump()
	if !strings.Contains(out, "DELIVER") || !strings.Contains(out, "rcv=2") {
		t.Errorf("dump = %q", out)
	}
	if !strings.Contains(out, "DIE") || strings.Contains(strings.Split(out, "\n")[1], "rcv=") {
		t.Errorf("non-receiver event printed a receiver: %q", out)
	}
	for k := Arrive; k <= Die; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind should stringify numerically")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New(0)
}
