// Package trace provides a bounded event trace for the protocol
// simulator: a fixed-capacity ring of timestamped protocol events
// (arrivals, transmissions, deliveries, losses, deaths, promotions,
// NACKs) that supports per-record timelines — the debugging view used
// when a consistency number looks wrong and one record's life story is
// the fastest way to find out why.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	Arrive   Kind = iota // record entered the live set
	Update               // record's value changed
	Transmit             // announcement entered service
	Deliver              // receiver got it
	Lose                 // channel dropped it for a receiver
	Promote              // NACK moved it cold -> hot
	NACK                 // receiver requested repair
	Die                  // record left the live set
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Arrive:
		return "ARRIVE"
	case Update:
		return "UPDATE"
	case Transmit:
		return "TX"
	case Deliver:
		return "DELIVER"
	case Lose:
		return "LOSE"
	case Promote:
		return "PROMOTE"
	case NACK:
		return "NACK"
	case Die:
		return "DIE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace entry.
type Event struct {
	T        float64 // simulated time
	Kind     Kind
	Key      string
	Receiver int // -1 when not receiver-specific
}

// String renders one line.
func (e Event) String() string {
	if e.Receiver >= 0 {
		return fmt.Sprintf("%10.4f %-8s %s rcv=%d", e.T, e.Kind, e.Key, e.Receiver)
	}
	return fmt.Sprintf("%10.4f %-8s %s", e.T, e.Kind, e.Key)
}

// Ring is a fixed-capacity event buffer; when full, the oldest events
// are overwritten. The zero value is unusable; construct with New.
type Ring struct {
	buf   []Event
	next  int
	count uint64 // total events ever recorded
}

// New returns a ring holding up to capacity events.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: capacity %d must be positive", capacity))
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Add records an event.
func (r *Ring) Add(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.count++
}

// Record is shorthand for Add.
func (r *Ring) Record(t float64, k Kind, key string, receiver int) {
	r.Add(Event{T: t, Kind: k, Key: key, Receiver: receiver})
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever recorded (including
// overwritten ones).
func (r *Ring) Total() uint64 { return r.count }

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Timeline returns the retained events for one key, in order.
func (r *Ring) Timeline(key string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Key == key {
			out = append(out, e)
		}
	}
	return out
}

// Filter returns the retained events matching the predicate.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events, one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
