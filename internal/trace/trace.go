// Package trace provides a bounded event trace for the protocol
// simulator and the live SSTP stack: a fixed-capacity ring of
// timestamped protocol events (arrivals, transmissions, deliveries,
// losses, deaths, promotions, NACKs) that supports per-record
// timelines — the debugging view used when a consistency number looks
// wrong and one record's life story is the fastest way to find out
// why.
//
// The simulator uses the unsynchronized ring (New); the live stack —
// where sender and receiver goroutines record concurrently and an
// admin endpoint reads — uses the thread-safe ring (NewSafe). Both
// export JSONL via WriteJSONL for offline analysis.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	Arrive    Kind = iota // record entered the live set
	Update                // record's value changed
	Transmit              // announcement entered service
	Deliver               // receiver got it
	Lose                  // channel dropped it for a receiver
	Promote               // NACK moved it cold -> hot
	NACK                  // receiver requested repair
	Die                   // record left the live set
	Expire                // replica entry timed out at a receiver
	Repair                // a peer answered a repair from its replica
	Confirm               // replica confirmed consistent (digest agreement / feedback)
	Tombstone             // deletion announcement applied at a receiver

	// NumKinds is the number of declared kinds; every Kind below it
	// must have a name in kindNames (enforced by TestKindNames).
	NumKinds = iota
)

// kindNames maps each declared Kind to its wire/display name. Adding
// a Kind without extending this table fails the kind-name test.
var kindNames = [NumKinds]string{
	Arrive:    "ARRIVE",
	Update:    "UPDATE",
	Transmit:  "TX",
	Deliver:   "DELIVER",
	Lose:      "LOSE",
	Promote:   "PROMOTE",
	NACK:      "NACK",
	Die:       "DIE",
	Expire:    "EXPIRE",
	Repair:    "REPAIR",
	Confirm:   "CONFIRM",
	Tombstone: "TOMB",
}

// String names the kind. Unknown kinds render stably as KIND(n), so
// logs and JSONL stay parseable even across version skew.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "KIND(" + strconv.Itoa(int(k)) + ")"
}

// Event is one trace entry.
type Event struct {
	T        float64 // simulated or wall-clock time, seconds
	Kind     Kind
	Key      string
	Node     string // which protocol node stamped it ("" = unattributed)
	Receiver int    // -1 when not receiver-specific
}

// String renders one line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.4f %-8s %s", e.T, e.Kind, e.Key)
	if e.Node != "" {
		s += " node=" + e.Node
	}
	if e.Receiver >= 0 {
		s += fmt.Sprintf(" rcv=%d", e.Receiver)
	}
	return s
}

// eventJSON is Event's wire form; Kind travels as its name, and the
// node and receiver are omitted when not set — so pre-node JSONL
// traces still parse.
type eventJSON struct {
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	Key  string  `json:"key"`
	Node string  `json:"node,omitempty"`
	Rcv  *int    `json:"rcv,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{T: e.T, Kind: e.Kind.String(), Key: e.Key, Node: e.Node}
	if e.Receiver >= 0 {
		rcv := e.Receiver
		j.Rcv = &rcv
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler; unknown kind names
// (including the KIND(n) fallback) round-trip through ParseKind.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	e.T, e.Key, e.Node = j.T, j.Key, j.Node
	e.Receiver = -1
	if j.Rcv != nil {
		e.Receiver = *j.Rcv
	}
	k, err := ParseKind(j.Kind)
	if err != nil {
		return err
	}
	e.Kind = k
	return nil
}

// ParseKind inverts Kind.String, including the KIND(n) fallback.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	if strings.HasPrefix(s, "KIND(") && strings.HasSuffix(s, ")") {
		n, err := strconv.Atoi(s[len("KIND(") : len(s)-1])
		if err == nil {
			return Kind(n), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// Ring is a fixed-capacity event buffer; when full, the oldest events
// are overwritten. The zero value is unusable; construct with New
// (single-goroutine, no locking — the simulator's hot path) or
// NewSafe (mutex-guarded for the live stack's concurrent writers and
// admin-endpoint readers).
type Ring struct {
	mu    sync.Mutex
	safe  bool
	buf   []Event
	next  int
	count uint64 // total events ever recorded
}

// New returns an unsynchronized ring holding up to capacity events.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: capacity %d must be positive", capacity))
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// NewSafe returns a thread-safe ring holding up to capacity events.
func NewSafe(capacity int) *Ring {
	r := New(capacity)
	r.safe = true
	return r
}

func (r *Ring) lock() {
	if r.safe {
		r.mu.Lock()
	}
}

func (r *Ring) unlock() {
	if r.safe {
		r.mu.Unlock()
	}
}

// Add records an event.
func (r *Ring) Add(e Event) {
	r.lock()
	defer r.unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.count++
}

// Record is shorthand for Add.
func (r *Ring) Record(t float64, k Kind, key string, receiver int) {
	r.Add(Event{T: t, Kind: k, Key: key, Receiver: receiver})
}

// RecordNode is Add with a node attribution — the live stack stamps
// which sender, receiver, or relay link an event happened at, so one
// record's journey through a relay tree reads directly off the JSONL.
func (r *Ring) RecordNode(t float64, k Kind, key, node string) {
	r.Add(Event{T: t, Kind: k, Key: key, Node: node, Receiver: -1})
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.lock()
	defer r.unlock()
	return len(r.buf)
}

// Total returns the number of events ever recorded (including
// overwritten ones).
func (r *Ring) Total() uint64 {
	r.lock()
	defer r.unlock()
	return r.count
}

// eventsLocked returns the retained events in chronological order.
// Caller holds the lock in safe mode.
func (r *Ring) eventsLocked() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	r.lock()
	defer r.unlock()
	return r.eventsLocked()
}

// Timeline returns the retained events for one key, in order.
func (r *Ring) Timeline(key string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Key == key {
			out = append(out, e)
		}
	}
	return out
}

// Filter returns the retained events matching the predicate.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events, one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSONL writes the retained events to w, one JSON object per
// line — the export format behind the admin endpoint's /trace.
func (r *Ring) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
