// Package eventsim implements a deterministic discrete-event
// simulation engine. It is the substrate on which the soft-state
// protocol simulations (open-loop announce/listen, two-queue aging,
// and receiver feedback) run.
//
// The engine maintains a priority queue of timestamped events. Events
// scheduled for the same instant fire in scheduling order, which makes
// runs reproducible. All simulated components share one *Sim and must
// be driven from a single goroutine; this mirrors the structure of
// classic network simulators and avoids any need for locking in the
// protocol models.
//
// Event nodes are recycled through an internal free list, so
// steady-state scheduling does not allocate: the handles returned by
// At/After carry a generation stamp, and operations on a handle whose
// node has since been recycled are safe no-ops. This matters because
// every simulated transmission, arrival, and timer is one event —
// the free list removes the dominant per-event allocation from the
// experiment sweeps.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"

	"softstate/internal/obs"
)

// Time is a simulated timestamp in seconds from the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = float64

// eventNode is the pooled representation of one scheduled callback.
type eventNode struct {
	when  Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	index int    // heap index; -1 when not queued
	gen   uint64 // incremented on recycle; pairs with Event.gen
	fn    func()
}

// Event is a handle to a scheduled callback. It is a small value, not
// a pointer: copies are fine and the zero Event is inert. A handle
// stays valid after its event fires or is cancelled — Cancel and
// Pending simply become no-ops — because the underlying node's
// generation stamp no longer matches.
type Event struct {
	node *eventNode
	gen  uint64
	fn   func()
	when Time
}

// Time returns the instant the event was scheduled for.
func (e Event) Time() Time { return e.when }

// Pending reports whether the event is still queued and not cancelled.
func (e Event) Pending() bool {
	return e.node != nil && e.node.gen == e.gen && e.node.index >= 0
}

type eventQueue []*eventNode

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*eventNode)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. Create one with New.
type Sim struct {
	now    Time
	queue  eventQueue
	free   []*eventNode // recycled nodes
	seq    uint64
	fired  uint64
	halted bool

	firedC *obs.Counter
}

// Instrument publishes the event loop's progress to reg as
// eventsim_events_fired_total. Safe with a nil registry.
func (s *Sim) Instrument(reg *obs.Registry) {
	s.firedC = reg.Counter("eventsim_events_fired_total")
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far. Useful for
// progress accounting and loop-detection in tests.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// alloc takes a node from the free list or makes a fresh one.
func (s *Sim) alloc() *eventNode {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &eventNode{index: -1}
}

// recycle returns a node to the free list, invalidating every handle
// that points at it.
func (s *Sim) recycle(e *eventNode) {
	e.gen++
	e.fn = nil
	s.free = append(s.free, e)
}

// At schedules fn at absolute time t. Scheduling in the past panics:
// that is always a model bug and silently reordering time would
// corrupt every metric downstream.
func (s *Sim) At(t Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	e := s.alloc()
	e.when, e.seq, e.fn = t, s.seq, fn
	s.seq++
	heap.Push(&s.queue, e)
	return Event{node: e, gen: e.gen, fn: fn, when: t}
}

// After schedules fn after d seconds of simulated time.
func (s *Sim) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+Time(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling a zero,
// already-fired, or already-cancelled event is a no-op.
func (s *Sim) Cancel(e Event) {
	n := e.node
	if n == nil || n.gen != e.gen || n.index < 0 {
		return
	}
	heap.Remove(&s.queue, n.index)
	s.recycle(n)
}

// Reschedule moves a pending event to a new absolute time, preserving
// its callback. If the event already fired or was cancelled, a new
// event is created with the same callback.
func (s *Sim) Reschedule(e Event, t Time) Event {
	s.Cancel(e)
	return s.At(t, e.fn)
}

// Halt stops the current Run/RunUntil after the in-flight event
// completes. Pending events remain queued.
func (s *Sim) Halt() { s.halted = true }

// Step executes the single next event, if any, and reports whether an
// event fired.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*eventNode)
	s.now = e.when
	s.fired++
	s.firedC.Inc()
	fn := e.fn
	// Recycle before running fn: handles to this event are already
	// invalid (gen bumped), and fn may immediately schedule new events
	// that reuse the node.
	s.recycle(e)
	fn()
	return true
}

// RunUntil executes events in timestamp order until the queue is
// empty or the next event is strictly after deadline. The clock is
// advanced to deadline on return so that time-weighted metrics close
// their final interval correctly.
func (s *Sim) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			break
		}
		s.Step()
	}
	if !s.halted && deadline > s.now {
		s.now = deadline
	}
}

// Run executes events until the queue drains or Halt is called.
func (s *Sim) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Ticker invokes fn every period seconds, starting one period from
// now, until the returned stop function is called. Periods must be
// positive and finite.
func (s *Sim) Ticker(period Duration, fn func()) (stop func()) {
	if period <= 0 || math.IsInf(period, 0) || math.IsNaN(period) {
		panic(fmt.Sprintf("eventsim: invalid ticker period %v", period))
	}
	var ev Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped { // fn may have called stop
			ev = s.After(period, tick)
		}
	}
	ev = s.After(period, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
