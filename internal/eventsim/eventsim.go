// Package eventsim implements a deterministic discrete-event
// simulation engine. It is the substrate on which the soft-state
// protocol simulations (open-loop announce/listen, two-queue aging,
// and receiver feedback) run.
//
// The engine maintains a priority queue of timestamped events. Events
// scheduled for the same instant fire in scheduling order, which makes
// runs reproducible. All simulated components share one *Sim and must
// be driven from a single goroutine; this mirrors the structure of
// classic network simulators and avoids any need for locking in the
// protocol models.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"

	"softstate/internal/obs"
)

// Time is a simulated timestamp in seconds from the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = float64

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	when   Time
	seq    uint64 // tie-break: FIFO among events at the same instant
	index  int    // heap index; -1 when not queued
	fn     func()
	cancel bool
}

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.when }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. Create one with New.
type Sim struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool

	firedC *obs.Counter
}

// Instrument publishes the event loop's progress to reg as
// eventsim_events_fired_total. Safe with a nil registry.
func (s *Sim) Instrument(reg *obs.Registry) {
	s.firedC = reg.Counter("eventsim_events_fired_total")
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far. Useful for
// progress accounting and loop-detection in tests.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of queued (non-cancelled) events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.cancel {
			n++
		}
	}
	return n
}

// At schedules fn at absolute time t. Scheduling in the past panics:
// that is always a model bug and silently reordering time would
// corrupt every metric downstream.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	e := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn after d seconds of simulated time.
func (s *Sim) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+Time(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling a nil,
// already-fired, or already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Reschedule moves a pending event to a new absolute time, preserving
// its callback. If the event already fired or was cancelled, a new
// event is created with the same callback.
func (s *Sim) Reschedule(e *Event, t Time) *Event {
	fn := e.fn
	s.Cancel(e)
	return s.At(t, fn)
}

// Halt stops the current Run/RunUntil after the in-flight event
// completes. Pending events remain queued.
func (s *Sim) Halt() { s.halted = true }

// Step executes the single next event, if any, and reports whether an
// event fired.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.when
		s.fired++
		s.firedC.Inc()
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is
// empty or the next event is strictly after deadline. The clock is
// advanced to deadline on return so that time-weighted metrics close
// their final interval correctly.
func (s *Sim) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			break
		}
		s.Step()
	}
	if !s.halted && deadline > s.now {
		s.now = deadline
	}
}

// Run executes events until the queue drains or Halt is called.
func (s *Sim) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Ticker invokes fn every period seconds, starting one period from
// now, until the returned stop function is called. Periods must be
// positive and finite.
func (s *Sim) Ticker(period Duration, fn func()) (stop func()) {
	if period <= 0 || math.IsInf(period, 0) || math.IsNaN(period) {
		panic(fmt.Sprintf("eventsim: invalid ticker period %v", period))
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped { // fn may have called stop
			ev = s.After(period, tick)
		}
	}
	ev = s.After(period, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
