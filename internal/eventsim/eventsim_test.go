package eventsim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	s := New()
	var order []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { order = append(order, at) })
	}
	s.Run()
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Errorf("events out of order: %v", order)
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v, want 5", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Errorf("After(3) from t=2 fired at %v, want 5", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	if !e.Pending() {
		t.Error("event should be pending before run")
	}
	s.Cancel(e)
	if e.Pending() {
		t.Error("event should not be pending after cancel")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	s.Cancel(e)       // double-cancel is a no-op
	s.Cancel(Event{}) // zero handle is inert
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New()
	fired := false
	var victim Event
	s.At(1, func() { s.Cancel(victim) })
	victim = s.At(2, func() { fired = true })
	s.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var at Time
	e := s.At(1, func() { at = s.Now() })
	s.Reschedule(e, 4)
	s.Run()
	if at != 4 {
		t.Errorf("rescheduled event fired at %v, want 4", at)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++ })
	s.At(10, func() { fired++ })
	s.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired %d events by t=5, want 1", fired)
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v after RunUntil(5)", s.Now())
	}
	s.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired %d events by t=20, want 2", fired)
	}
}

func TestHalt(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++; s.Halt() })
	s.At(2, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d events, want 1 (halted)", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var times []Time
	var stop func()
	stop = s.Ticker(2, func() {
		times = append(times, s.Now())
		if len(times) == 3 {
			stop()
		}
	})
	s.RunUntil(100)
	want := []Time{2, 4, 6}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestTickerInvalidPeriodPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Ticker(0) did not panic")
		}
	}()
	s.Ticker(0, func() {})
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", s.Fired())
	}
}

// Property: for any set of non-negative event times, execution visits
// them in sorted order and the final clock equals the maximum.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var fired []Time
		max := Time(0)
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNilFuncPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event function did not panic")
		}
	}()
	s.At(1, nil)
}
