package eventsim

import "testing"

func TestRescheduleAfterFire(t *testing.T) {
	s := New()
	count := 0
	e := s.At(1, func() { count++ })
	s.Step() // fires
	// Rescheduling a fired event re-creates it with the same callback.
	s.Reschedule(e, 5)
	s.Run()
	if count != 2 {
		t.Errorf("callback ran %d times, want 2", count)
	}
}

func TestRescheduleCancelled(t *testing.T) {
	s := New()
	count := 0
	e := s.At(1, func() { count++ })
	s.Cancel(e)
	s.Reschedule(e, 2)
	s.Run()
	if count != 1 {
		t.Errorf("callback ran %d times, want 1", count)
	}
}

func TestPendingCount(t *testing.T) {
	s := New()
	a := s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Cancel(a)
	if s.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d, want 0", s.Pending())
	}
}

func TestEventTimeAccessor(t *testing.T) {
	s := New()
	e := s.At(3.5, func() {})
	if e.Time() != 3.5 {
		t.Errorf("Time = %v", e.Time())
	}
	var zero Event
	if zero.Pending() {
		t.Error("zero event reports pending")
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	s := New()
	fired := false
	s.At(5, func() { fired = true })
	s.RunUntil(5) // events at exactly the deadline fire
	if !fired {
		t.Error("event at the deadline did not fire")
	}
}

func TestTickerStopInsideCallbackBeforeFn(t *testing.T) {
	s := New()
	calls := 0
	stop := s.Ticker(1, func() { calls++ })
	s.At(2.5, stop)
	s.RunUntil(10)
	if calls != 2 {
		t.Errorf("ticker fired %d times, want 2", calls)
	}
}
